"""GEN/KILL transfer functions for every statement/expression kind.

``TransferFunctions`` pre-compiles each statement of a method into a
small *plan* -- an op tag plus resolved slot/instance ids -- so the
worklist hot loop evaluates nodes without re-inspecting the IR.  The
same plans are executed by the sequential reference, the plain GPU
kernel, and every GDroid variant, which is what makes their outputs
bit-identical (the paper's correctness check).

Monotonicity: every plan computes ``OUT = (IN \\ KILL) | GEN(IN)``
where KILL is a fixed slot's facts (strong updates of locals, statics
and the return slot) and GEN is a monotone function of IN.  Hence OUT
is monotone in IN -- the property the MER optimization relies on to
postpone tail-list processing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.dataflow.facts import ARRAY_FIELD, FactSpace
from repro.dataflow.summaries import MethodSummary, Source, external_summary
from repro.ir.expressions import (
    AccessExpr,
    CallRhs,
    CastExpr,
    ConstClassExpr,
    ExceptionExpr,
    Expression,
    IndexingExpr,
    LiteralExpr,
    NewExpr,
    NullExpr,
    StaticFieldAccessExpr,
    TupleExpr,
    VariableNameExpr,
)
from repro.ir.statements import (
    AssignmentStatement,
    CallStatement,
    ReturnStatement,
    Statement,
)


@dataclass(frozen=True, slots=True)
class ValuePlan:
    """Compiled instance-set expression.

    The instances a value may denote, as a function of IN:
    ``consts  |  union(pts(slot) for slot in slots)
             |  union(pts(heap(o, field)) for (base, field) in derefs
                                          for o in pts(base))``.
    """

    consts: Tuple[int, ...] = ()
    slots: Tuple[int, ...] = ()
    derefs: Tuple[Tuple[int, str], ...] = ()

    @property
    def deref_depth(self) -> int:
        """0 = constant-only, 1 = single slot read, 2 = double deref."""
        if self.derefs:
            return 2
        if self.slots:
            return 1
        return 0


@dataclass(frozen=True, slots=True)
class CallEffect:
    """One instantiated summary effect at a call site.

    ``target_kind`` selects where the generated facts land:
    ``"result"`` (strong), ``"global"`` (weak, ``target`` = slot id) or
    ``"field"`` (weak, ``target`` = (base slot id, field name)).
    ``sources`` are compiled source terms: ``("const", inst_id)`` for
    fresh, ``("slot", slot_id)`` for param/global reads, and
    ``("deref", slot_id, field)`` for parameter-field entry values.
    """

    target_kind: str
    target: object
    sources: Tuple[Tuple, ...]


@dataclass(frozen=True, slots=True)
class NodePlan:
    """Compiled transfer plan of one statement."""

    #: Op tag: "identity" | "assign" | "store_heap" | "store_global"
    #: | "call" | "return".
    op: str
    #: Strong-update slot (assign/call result/return/static store), or None.
    kill_slot: Optional[int] = None
    #: Value being assigned / stored / returned.
    value: Optional[ValuePlan] = None
    #: Heap-store target: (base slot id, field name).
    heap_target: Optional[Tuple[int, str]] = None
    #: Call effects (instantiated callee summary), in application order.
    call_effects: Tuple[CallEffect, ...] = ()

    @property
    def is_identity(self) -> bool:
        """True when this node can never add or move a fact."""
        return self.op == "identity"


class TransferFunctions:
    """Per-method compiled transfer functions.

    Parameters
    ----------
    space:
        The method's pre-determined fact space.
    summaries:
        Callee summaries by signature string.  Callees missing from the
        mapping get the conservative external summary.
    """

    __slots__ = ("space", "plans", "_instance_count")

    def __init__(
        self,
        space: FactSpace,
        summaries: Optional[Mapping[str, MethodSummary]] = None,
    ) -> None:
        self.space = space
        self._instance_count = space.instance_count
        summary_table = summaries or {}
        self.plans: Tuple[NodePlan, ...] = tuple(
            self._compile(statement, summary_table)
            for statement in space.method.statements
        )

    # -- compilation -----------------------------------------------------------

    def _compile_value(self, expression: Expression) -> ValuePlan:
        space = self.space
        if isinstance(expression, NewExpr):
            raise AssertionError("NewExpr is compiled at statement level")
        if isinstance(expression, NullExpr):
            inst = space.null_instance()
            return ValuePlan(consts=(inst,) if inst is not None else ())
        if isinstance(expression, LiteralExpr):
            if isinstance(expression.value, str):
                inst = space.const_instance("str")
                return ValuePlan(consts=(inst,) if inst is not None else ())
            return ValuePlan()
        if isinstance(expression, ConstClassExpr):
            inst = space.class_instance(expression.referenced.class_name)
            return ValuePlan(consts=(inst,) if inst is not None else ())
        if isinstance(expression, (VariableNameExpr, CastExpr)):
            name = (
                expression.name
                if isinstance(expression, VariableNameExpr)
                else expression.operand
            )
            slot = space.var_slot(name)
            return ValuePlan(slots=(slot,) if slot is not None else ())
        if isinstance(expression, TupleExpr):
            slots = tuple(
                s
                for s in (space.var_slot(e) for e in expression.elements)
                if s is not None
            )
            return ValuePlan(slots=slots)
        if isinstance(expression, StaticFieldAccessExpr):
            slot = space.global_slot(expression.global_slot)
            return ValuePlan(slots=(slot,) if slot is not None else ())
        if isinstance(expression, AccessExpr):
            base = space.var_slot(expression.base)
            if base is None:
                return ValuePlan()
            return ValuePlan(derefs=((base, expression.field_name),))
        if isinstance(expression, IndexingExpr):
            base = space.var_slot(expression.base)
            if base is None:
                return ValuePlan()
            return ValuePlan(derefs=((base, ARRAY_FIELD),))
        # Binary / Unary / Cmp / InstanceOf / Length / Exception handled
        # by callers; primitive-valued expressions denote no instances.
        return ValuePlan()

    def _compile_call(
        self,
        label: str,
        callee: str,
        args: Sequence[str],
        result: Optional[str],
        summaries: Mapping[str, MethodSummary],
    ) -> NodePlan:
        space = self.space
        summary = summaries.get(callee)
        if summary is None:
            summary = external_summary(callee)
        call_inst = space.call_instance(label)

        def compile_sources(sources: FrozenSet[Source]) -> Tuple[Tuple, ...]:
            compiled: List[Tuple] = []
            for source in sorted(sources):
                if source[0] == "fresh":
                    if call_inst is not None:
                        compiled.append(("const", call_inst))
                elif source[0] == "param":
                    index = source[1]
                    if index < len(args):
                        slot = space.var_slot(args[index])
                        if slot is not None:
                            compiled.append(("slot", slot))
                elif source[0] == "pfield":
                    index, field_name = source[1], source[2]
                    if index < len(args):
                        slot = space.var_slot(args[index])
                        if slot is not None:
                            compiled.append(("deref", slot, field_name))
                else:  # ("global", name)
                    slot = space.global_slot(source[1])
                    if slot is not None:
                        compiled.append(("slot", slot))
            return tuple(compiled)

        effects: List[CallEffect] = []
        result_slot = space.var_slot(result) if result is not None else None
        if result_slot is not None:
            return_sources: Set[Source] = set()
            if summary.returns_fresh:
                return_sources.add(("fresh",))
            return_sources.update(("param", j) for j in summary.return_params)
            return_sources.update(("global", g) for g in summary.return_globals)
            return_sources.update(
                ("pfield", j, f) for (j, f) in summary.return_pfields
            )
            effects.append(
                CallEffect(
                    target_kind="result",
                    target=result_slot,
                    sources=compile_sources(frozenset(return_sources)),
                )
            )
        for name, sources in sorted(summary.global_writes.items()):
            slot = space.global_slot(name)
            if slot is not None:
                effects.append(
                    CallEffect(
                        target_kind="global",
                        target=slot,
                        sources=compile_sources(sources),
                    )
                )
        for (target_source, field_name), sources in sorted(
            summary.field_writes.items()
        ):
            if target_source[0] == "param":
                index = target_source[1]
                base = (
                    space.var_slot(args[index]) if index < len(args) else None
                )
            elif target_source[0] == "pfield":
                # Write into a field of the object held by arg_j's own
                # field f: a two-level dereference at the call site.
                index, inner_field = target_source[1], target_source[2]
                base = (
                    space.var_slot(args[index]) if index < len(args) else None
                )
                if base is not None:
                    effects.append(
                        CallEffect(
                            target_kind="field2",
                            target=(base, inner_field, field_name),
                            sources=compile_sources(sources),
                        )
                    )
                continue
            else:
                base = space.global_slot(target_source[1])
            if base is not None:
                effects.append(
                    CallEffect(
                        target_kind="field",
                        target=(base, field_name),
                        sources=compile_sources(sources),
                    )
                )

        if not effects:
            return NodePlan(op="identity")
        return NodePlan(
            op="call",
            kill_slot=result_slot,
            call_effects=tuple(effects),
        )

    def _compile(
        self, statement: Statement, summaries: Mapping[str, MethodSummary]
    ) -> NodePlan:
        space = self.space
        if isinstance(statement, ReturnStatement):
            if statement.operand is None:
                return NodePlan(op="identity")
            slot = space.var_slot(statement.operand)
            if slot is None:
                return NodePlan(op="identity")
            return NodePlan(
                op="return",
                kill_slot=space.return_slot(),
                value=ValuePlan(slots=(slot,)),
            )
        if isinstance(statement, CallStatement):
            return self._compile_call(
                statement.label,
                statement.callee,
                statement.args,
                statement.result,
                summaries,
            )
        if not isinstance(statement, AssignmentStatement):
            # Empty / Monitor / Throw / Goto / If / Switch: identity.
            return NodePlan(op="identity")

        if isinstance(statement.rhs, CallRhs):
            return self._compile_call(
                statement.label,
                statement.rhs.callee,
                statement.rhs.args,
                statement.lhs if statement.lhs_access is None else None,
                summaries,
            )

        if statement.lhs_access is None:
            dst = space.var_slot(statement.lhs)
            if dst is None:
                return NodePlan(op="identity")
            if isinstance(statement.rhs, NewExpr):
                site = space.site_instance(statement.label)
                return NodePlan(
                    op="assign", kill_slot=dst, value=ValuePlan(consts=(site,))
                )
            if isinstance(statement.rhs, ExceptionExpr):
                exc = space.exc_instance(statement.label)
                return NodePlan(
                    op="assign", kill_slot=dst, value=ValuePlan(consts=(exc,))
                )
            value = self._compile_value(statement.rhs)
            if not value.consts and not value.slots and not value.derefs:
                return NodePlan(op="identity")
            return NodePlan(op="assign", kill_slot=dst, value=value)

        # Heap / static stores.
        access = statement.lhs_access
        value = (
            ValuePlan(consts=(space.site_instance(statement.label),))
            if isinstance(statement.rhs, NewExpr)
            else self._compile_value(statement.rhs)
        )
        if isinstance(access, StaticFieldAccessExpr):
            slot = space.global_slot(access.global_slot)
            if slot is None:
                return NodePlan(op="identity")
            return NodePlan(op="store_global", kill_slot=slot, value=value)
        if isinstance(access, AccessExpr):
            base = space.var_slot(access.base)
            field_name = access.field_name
        else:
            assert isinstance(access, IndexingExpr)
            base = space.var_slot(access.base)
            field_name = ARRAY_FIELD
        if base is None:
            return NodePlan(op="identity")
        return NodePlan(
            op="store_heap", value=value, heap_target=(base, field_name)
        )

    # -- evaluation -------------------------------------------------------------

    def _pts(self, slot: int, in_facts: Set[int]) -> List[int]:
        """Instance ids slot points to under IN."""
        count = self._instance_count
        base = slot * count
        return [fact - base for fact in in_facts if base <= fact < base + count]

    def _eval_value(self, value: ValuePlan, in_facts: Set[int]) -> Set[int]:
        instances: Set[int] = set(value.consts)
        for slot in value.slots:
            instances.update(self._pts(slot, in_facts))
        space = self.space
        for base, field_name in value.derefs:
            for obj in self._pts(base, in_facts):
                heap = space.heap_slot(obj, field_name)
                if heap is not None:
                    instances.update(self._pts(heap, in_facts))
        return instances

    def out_facts(self, node: int, in_facts: Set[int]) -> Set[int]:
        """Apply node's transfer: OUT = (IN \\ KILL) | GEN(IN)."""
        plan = self.plans[node]
        if plan.op == "identity":
            return in_facts

        space = self.space
        count = self._instance_count

        if plan.op in ("assign", "return", "store_global"):
            dst = plan.kill_slot
            assert dst is not None and plan.value is not None
            instances = self._eval_value(plan.value, in_facts)
            base = dst * count
            out = {f for f in in_facts if not base <= f < base + count}
            out.update(base + i for i in instances)
            return out

        if plan.op == "store_heap":
            assert plan.value is not None and plan.heap_target is not None
            base_slot, field_name = plan.heap_target
            instances = self._eval_value(plan.value, in_facts)
            out = set(in_facts)
            for obj in self._pts(base_slot, in_facts):
                heap = space.heap_slot(obj, field_name)
                if heap is not None:
                    heap_base = heap * count
                    out.update(heap_base + i for i in instances)
            return out

        assert plan.op == "call"
        out = set(in_facts)
        if plan.kill_slot is not None:
            base = plan.kill_slot * count
            out = {f for f in out if not base <= f < base + count}
        for effect in plan.call_effects:
            instances: Set[int] = set()
            for source in effect.sources:
                kind = source[0]
                if kind == "const":
                    instances.add(source[1])
                elif kind == "slot":
                    instances.update(self._pts(source[1], in_facts))
                else:  # ("deref", slot, field)
                    for obj in self._pts(source[1], in_facts):
                        heap = space.heap_slot(obj, source[2])
                        if heap is not None:
                            instances.update(self._pts(heap, in_facts))
            if effect.target_kind == "result":
                base = effect.target * count
                out.update(base + i for i in instances)
            elif effect.target_kind == "global":
                base = effect.target * count
                out.update(base + i for i in instances)
            elif effect.target_kind == "field":
                base_slot, field_name = effect.target
                for obj in self._pts(base_slot, in_facts):
                    heap = space.heap_slot(obj, field_name)
                    if heap is not None:
                        heap_base = heap * count
                        out.update(heap_base + i for i in instances)
            else:  # field2: write through arg.inner_field
                base_slot, inner_field, field_name = effect.target
                for obj in self._pts(base_slot, in_facts):
                    inner = space.heap_slot(obj, inner_field)
                    if inner is None:
                        continue
                    for middle in self._pts(inner, in_facts):
                        heap = space.heap_slot(middle, field_name)
                        if heap is not None:
                            heap_base = heap * count
                            out.update(heap_base + i for i in instances)
        return out

    # -- cost-model metadata ------------------------------------------------------

    def deref_depth(self, node: int) -> int:
        """Dereference depth of the node's value computation (0/1/2)."""
        plan = self.plans[node]
        if plan.op == "identity":
            return 1  # reads its IN set once to forward it
        if plan.op == "call":
            depth = 1
            for effect in plan.call_effects:
                if effect.target_kind in ("field", "field2"):
                    depth = 2
                if any(source[0] == "deref" for source in effect.sources):
                    depth = 2
            return depth
        if plan.op == "store_heap":
            return 2
        assert plan.value is not None
        return max(plan.value.deref_depth, 1) if plan.op != "assign" else plan.value.deref_depth
