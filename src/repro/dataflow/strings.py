"""Interprocedural string-constant propagation (the ICC resolver's
value analysis).

A second IDE client over the same ICFG worklist substrate as
:class:`repro.dataflow.ide.IdeConstantSolver`: where the base solver
tracks integer copy-constants, this one tracks *component-name
strings* -- the values ``Intent.setClassName`` / ``Intent.setAction``
call sites consume.  The lattice is

    ``BOTTOM``  (undefined / unreached)
      < string constants (including concatenations of constants)
      < ``TOP``  (provably non-constant)

String constants are wrapped as ``("s", value)`` tuples so program
strings can never collide with the ``"bottom"`` / ``"top"`` sentinel
strings the base lattice uses.

Transformer differences from the copy-constant base:

* string literals become constants; integer literals kill to ``TOP``
  (the lattice only carries strings);
* ``a + b`` concatenates when both operands are string constants;
* call results are *killed*: an external call's result is ``TOP``
  (its return value is opaque), an internal call's result is erased so
  only the interprocedural return edges can (re)establish it.  The
  inherited fixed point never kills call results itself, so without
  this a constant assigned before the call would survive it -- stale
  and unsound.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.dataflow.ide import (
    BOTTOM,
    TOP,
    IdeConstantSolver,
    Value,
    _call_result,
    meet,
)
from repro.ir.expressions import (
    BinaryExpr,
    CallRhs,
    LiteralExpr,
    VariableNameExpr,
)
from repro.ir.statements import CallStatement, Statement, callee_of

#: Tag of the wrapped string-constant lattice values.
_CONST_TAG = "s"


def const(value: str) -> Tuple[str, str]:
    """Wrap a program string as a lattice constant."""
    return (_CONST_TAG, value)


def is_const(value: Value) -> bool:
    """True for wrapped string constants (neither BOTTOM nor TOP)."""
    return (
        isinstance(value, tuple)
        and len(value) == 2
        and value[0] == _CONST_TAG
        and isinstance(value[1], str)
    )


def const_value(value: Value) -> Optional[str]:
    """The program string of a wrapped constant, or None."""
    return value[1] if is_const(value) else None


class StringConstantSolver(IdeConstantSolver):
    """String/component-name constants over the whole-app ICFG.

    Inherits the interprocedural fixed point (call edges map argument
    values onto parameters, return edges map returned values onto call
    results); only the per-statement transformer changes.
    """

    def _transform(
        self, statement: Statement, env: Dict[str, Value]
    ) -> Dict[str, Value]:
        from repro.ir.statements import AssignmentStatement

        # Plain call statements: kill the result binding (the base
        # class treats them as the identity, which is stale for any
        # variable the call rewrites).
        if isinstance(statement, CallStatement):
            if statement.result is None:
                return env
            out = dict(env)
            self._kill_result(statement, statement.result, out)
            return out
        if not isinstance(statement, AssignmentStatement):
            return env
        if statement.lhs_access is not None:
            return env

        rhs = statement.rhs
        target = statement.lhs
        out = dict(env)
        if isinstance(rhs, LiteralExpr):
            if isinstance(rhs.value, str):
                out[target] = const(rhs.value)
            else:
                out[target] = TOP
        elif isinstance(rhs, VariableNameExpr):
            out[target] = env.get(rhs.name, BOTTOM)
        elif isinstance(rhs, BinaryExpr) and rhs.op == "+":
            left = env.get(rhs.left, BOTTOM)
            right = env.get(rhs.right, BOTTOM)
            if is_const(left) and is_const(right):
                out[target] = const(left[1] + right[1])
            elif left == BOTTOM or right == BOTTOM:
                out[target] = BOTTOM
            else:
                out[target] = TOP
        elif isinstance(rhs, CallRhs):
            self._kill_result(statement, target, out)
        else:
            # Arithmetic, loads, comparisons, casts, foreign
            # expressions: never a known string.
            out[target] = TOP
        return out

    def _kill_result(
        self, statement: Statement, result: str, out: Dict[str, Value]
    ) -> None:
        """Erase a call's result binding from the out environment.

        External callees return opaque values (``TOP``); internal
        callees' results are dropped to ``BOTTOM`` (absence) so the
        return edges of the inherited fixed point are their only
        writers -- :func:`repro.dataflow.ide.meet` then combines the
        actually-returned values across call targets.
        """
        callee = callee_of(statement)
        if callee is not None and callee in self.app.method_table:
            out.pop(result, None)
        else:
            out[result] = TOP


__all__ = [
    "BOTTOM",
    "TOP",
    "StringConstantSolver",
    "const",
    "const_value",
    "is_const",
    "meet",
    "_call_result",
]
