"""An IDE solver (Sagiv, Reps & Horwitz, TCS'96) for copy-constant
propagation.

The paper cites IDE as the IFDS extension in the same breath ("the
inter-procedural distributed environment transformers (IDE)"); where
IFDS answers *reachability* of facts, IDE computes a *value* per fact
by composing micro-functions along the exploded supergraph's edges.

This instance is classic copy-constant propagation over the IR's
primitive locals:

* value lattice: ``BOTTOM`` (undefined / unreached) < constants <
  ``TOP`` (non-constant);
* edge functions: the identity, the constant function ``const(c)``,
  and ``top`` -- a function space closed under composition and meet,
  which is exactly what makes the IDE phase-2 value computation exact.

The solver reuses the package's ICFG and follows the two-phase
structure: a tabulation over (node, variable) jump functions, then a
value propagation pass.  For this tiny function space the two phases
fuse naturally into one fixed point on environments.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.cfg.icfg import ICFG, build_icfg
from repro.ir.app import AndroidApp
from repro.ir.expressions import BinaryExpr, CallRhs, LiteralExpr, UnaryExpr, VariableNameExpr
from repro.ir.method import Method
from repro.ir.statements import (
    AssignmentStatement,
    CallStatement,
    ReturnStatement,
    Statement,
)

#: Lattice sentinels.  Constants are plain ints between them.
BOTTOM = "bottom"  # unreached / undefined
TOP = "top"  # provably non-constant

Value = object  # BOTTOM | TOP | int


def meet(a: Value, b: Value) -> Value:
    """The IDE meet: join of information loss."""
    if a == BOTTOM:
        return b
    if b == BOTTOM:
        return a
    if a == TOP or b == TOP:
        return TOP
    return a if a == b else TOP


@dataclass(frozen=True)
class ConstantEnvironment:
    """Variable -> lattice value at one program point."""

    values: Mapping[str, Value]

    def of(self, variable: str) -> Value:
        """Lattice value bound to ``variable`` (BOTTOM if absent)."""
        return self.values.get(variable, BOTTOM)

    def constants(self) -> Dict[str, int]:
        """The provably-constant bindings only."""
        return {
            variable: value
            for variable, value in self.values.items()
            if value not in (BOTTOM, TOP)
        }


class IdeConstantSolver:
    """Copy-constant propagation over the whole-app ICFG."""

    def __init__(self, app: AndroidApp, icfg: Optional[ICFG] = None) -> None:
        self.app = app
        self.icfg = icfg or build_icfg(app)
        #: node -> variable -> value (the environment entering the node).
        self.environments: Dict[int, Dict[str, Value]] = {}

    # -- transformers ----------------------------------------------------------------

    def _transform(
        self, statement: Statement, env: Dict[str, Value]
    ) -> Dict[str, Value]:
        """Apply one statement's environment transformer."""
        if not isinstance(statement, AssignmentStatement):
            return env
        if statement.lhs_access is not None:
            return env
        rhs = statement.rhs
        target = statement.lhs
        out = dict(env)
        if isinstance(rhs, LiteralExpr) and isinstance(rhs.value, int) and not isinstance(rhs.value, bool):
            out[target] = rhs.value
        elif isinstance(rhs, VariableNameExpr):
            out[target] = env.get(rhs.name, BOTTOM)
        elif isinstance(rhs, UnaryExpr) and rhs.op == "-":
            operand = env.get(rhs.operand, BOTTOM)
            out[target] = (
                -operand if isinstance(operand, int) else meet(operand, TOP)
                if operand != BOTTOM
                else BOTTOM
            )
        elif isinstance(rhs, BinaryExpr) and rhs.op in ("+", "-", "*"):
            left = env.get(rhs.left, BOTTOM)
            right = env.get(rhs.right, BOTTOM)
            if isinstance(left, int) and isinstance(right, int):
                ops = {"+": left + right, "-": left - right, "*": left * right}
                out[target] = ops[rhs.op]
            elif left == BOTTOM or right == BOTTOM:
                out[target] = BOTTOM
            else:
                out[target] = TOP
        elif isinstance(rhs, CallRhs):
            out[target] = TOP
        else:
            # Loads, comparisons, casts, foreign expressions: unknown.
            out[target] = TOP
        return out

    # -- the fixed point ----------------------------------------------------------------

    @staticmethod
    def _merge_into(
        target: Dict[str, Value], source: Mapping[str, Value]
    ) -> bool:
        changed = False
        for variable, value in source.items():
            met = meet(target.get(variable, BOTTOM), value)
            if target.get(variable, BOTTOM) != met:
                target[variable] = met
                changed = True
        return changed

    def solve(self) -> None:
        """Run the propagation to its fixed point."""
        icfg = self.icfg
        worklist: deque = deque()
        for signature in icfg.roots:
            entry = icfg.entry_of(signature)
            if entry is not None:
                self.environments.setdefault(entry, {})
                worklist.append(entry)
        visited: Set[int] = set()

        while worklist:
            node = worklist.popleft()
            visited.add(node)
            statement = icfg.statement_of(node)
            env = self.environments.setdefault(node, {})
            out = self._transform(statement, env)

            # Intraprocedural successors.
            for successor in icfg.successors[node]:
                target = self.environments.setdefault(successor, {})
                if self._merge_into(target, out) or successor not in visited:
                    worklist.append(successor)

            # Call edges: map argument values onto parameters.
            for site, callee_entry in icfg.call_edges:
                if site != node:
                    continue
                callee = icfg.method_of(callee_entry)
                method = self.app.method_table[callee]
                args = _call_args(statement)
                callee_env: Dict[str, Value] = {}
                for index, parameter in enumerate(method.parameters):
                    if index < len(args):
                        callee_env[parameter.name] = env.get(args[index], BOTTOM)
                target = self.environments.setdefault(callee_entry, {})
                if self._merge_into(target, callee_env) or callee_entry not in visited:
                    worklist.append(callee_entry)

            # Return edges: map returned values onto call results.
            if isinstance(statement, ReturnStatement):
                for source, ret_target in icfg.return_edges:
                    if source != node:
                        continue
                    value = (
                        env.get(statement.operand, BOTTOM)
                        if statement.operand is not None
                        else BOTTOM
                    )
                    # The return edge targets the call site's successors;
                    # find the call site to learn the result variable.
                    for site, callee_entry in icfg.call_edges:
                        if icfg.method_of(callee_entry) != icfg.method_of(node):
                            continue
                        result = _call_result(icfg.statement_of(site))
                        if result is None:
                            continue
                        if ret_target in icfg.successors[site]:
                            target = self.environments.setdefault(ret_target, {})
                            if self._merge_into(target, {result: value}):
                                worklist.append(ret_target)

    # -- results --------------------------------------------------------------------------

    def environment_at(self, method: str, label: str) -> ConstantEnvironment:
        """The constant environment entering ``label`` of ``method``."""
        start, _end = self.icfg.method_span[method]
        index = self.app.method_table[method].index_of(label)
        return ConstantEnvironment(
            values=dict(self.environments.get(start + index, {}))
        )

    def constant_conditions(self) -> List[Tuple[str, str, int]]:
        """(method, label, value) for if-conditions proven constant --
        the dead-branch candidates a client optimization would use."""
        from repro.ir.statements import IfStatement

        found: List[Tuple[str, str, int]] = []
        for node in range(len(self.icfg)):
            statement = self.icfg.statement_of(node)
            if not isinstance(statement, IfStatement):
                continue
            value = self.environments.get(node, {}).get(statement.condition, BOTTOM)
            if isinstance(value, int) and not isinstance(value, bool):
                found.append(
                    (self.icfg.method_of(node), statement.label, value)
                )
        return found


def _call_args(statement: Statement) -> Tuple[str, ...]:
    if isinstance(statement, CallStatement):
        return statement.args
    if isinstance(statement, AssignmentStatement) and isinstance(
        statement.rhs, CallRhs
    ):
        return statement.rhs.args
    return ()


def _call_result(statement: Statement) -> Optional[str]:
    if isinstance(statement, CallStatement):
        return statement.result
    if isinstance(statement, AssignmentStatement) and isinstance(
        statement.rhs, CallRhs
    ):
        return statement.lhs if statement.lhs_access is None else None
    return None
