#!/usr/bin/env python
"""CI incremental-smoke gate: version bumps re-vet cheap and exact.

For each app in a deterministic corpus slice this script:

1. generates the app (the "old" version) and seeds a throwaway
   summary store from it;
2. mutates one method body (``repro.apk.generator.mutate_app``) to
   form the "new" version and diffs the two containers;
3. re-analyzes the new version incrementally and a second time cold
   (reference worklist, no store);
4. asserts the incremental fixpoint is bit-identical to the cold one
   (node-fact sets via ``IDFG.equivalent_to`` plus flows / ICC flows /
   linked flows / risk score through the vetting pipeline) and that
   the modeled re-vet cost is at least ``--min-speedup`` times
   cheaper.

A structured JSON report (per-app diff classification, reuse stats and
speedups) is written to ``--report`` for CI artifact upload.  Exit 0
only when every app passes both gates.

Usage::

    python tools/incremental_smoke.py --apps 12 --scale 0.25 \\
        --report incremental-smoke.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.apk.diff import diff_apps  # noqa: E402
from repro.apk.generator import GeneratorProfile, generate_app, mutate_app  # noqa: E402
from repro.dataflow.incremental import (  # noqa: E402
    MethodSummaryStore,
    analyze_app_incremental,
)
from repro.dataflow.worklist import analyze_app_reference  # noqa: E402
from repro.vetting.report import vet_app, vet_workload  # noqa: E402


class _Workload:
    __slots__ = ("analyzed_app", "idfg")

    def __init__(self, analyzed_app, idfg):
        self.analyzed_app = analyzed_app
        self.idfg = idfg


def smoke_one(index, scale, store):
    """Bump one app; return (ok, per-app report dict)."""
    seed = 100 + index
    old = generate_app(seed, GeneratorProfile(scale=scale))
    new, touched = mutate_app(old, seed=seed, count=1)
    diff = diff_apps(old, new)

    analyze_app_incremental(old, store)
    result = analyze_app_incremental(new, store)
    stats = result.stats

    reference_idfg = analyze_app_reference(new)
    identical = result.idfg.equivalent_to(reference_idfg)
    incremental_report = vet_workload(
        new, _Workload(result.analyzed_app, result.idfg)
    )
    cold_report = vet_app(new)
    flows_equal = (
        incremental_report.flows == cold_report.flows
        and incremental_report.icc_flows == cold_report.icc_flows
        and incremental_report.linked_flows == cold_report.linked_flows
        and incremental_report.risk_score == cold_report.risk_score
    )
    entry = {
        "package": new.package,
        "seed": seed,
        "touched": list(touched),
        "diff": diff.to_json(),
        "methods_total": stats.methods_total,
        "methods_reused": stats.methods_reused,
        "methods_recomputed": stats.methods_recomputed,
        "visits_cold": stats.visits_cold,
        "visits_incremental": stats.visits_incremental,
        "modeled_speedup": round(stats.modeled_speedup, 2),
        "bit_identical_facts": identical,
        "bit_identical_flows": flows_equal,
        "risk_score": cold_report.risk_score,
    }
    return identical and flows_equal, entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--apps", type=int, default=12)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--min-speedup", type=float, default=10.0)
    parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the structured JSON diff report here",
    )
    args = parser.parse_args(argv)

    entries = []
    failures = []
    with tempfile.TemporaryDirectory(prefix="incr-smoke-") as tmp:
        store = MethodSummaryStore(root=Path(tmp) / "summaries")
        for index in range(args.apps):
            exact, entry = smoke_one(index, args.scale, store)
            entries.append(entry)
            if not exact:
                failures.append(
                    f"{entry['package']}: incremental result diverged "
                    f"(facts identical: {entry['bit_identical_facts']}, "
                    f"flows identical: {entry['bit_identical_flows']})"
                )
            if entry["modeled_speedup"] < args.min_speedup:
                failures.append(
                    f"{entry['package']}: bump only "
                    f"{entry['modeled_speedup']:.1f}x cheaper "
                    f"(gate: >= {args.min_speedup}x)"
                )
            print(
                f"[{index + 1:2d}/{args.apps}] {entry['package']:24s} "
                f"{entry['methods_reused']:3d}/{entry['methods_total']:3d} "
                f"reused, {entry['modeled_speedup']:7.1f}x, "
                f"exact={'yes' if exact else 'NO'}"
            )
        store_stats = {
            "hits": store.hits,
            "misses": store.misses,
            "stores": store.stores,
        }

    speedups = [entry["modeled_speedup"] for entry in entries]
    report = {
        "apps": args.apps,
        "scale": args.scale,
        "min_speedup_gate": args.min_speedup,
        "min_speedup_seen": min(speedups) if speedups else None,
        "all_bit_identical": not any(
            not (e["bit_identical_facts"] and e["bit_identical_flows"])
            for e in entries
        ),
        "store": store_stats,
        "failures": failures,
        "entries": entries,
    }
    if args.report:
        Path(args.report).write_text(json.dumps(report, indent=2, sort_keys=True))
        print(f"wrote {args.report}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"incremental smoke: {args.apps} apps bit-identical, "
        f"min speedup {min(speedups):.1f}x (gate {args.min_speedup}x)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
