#!/usr/bin/env python3
"""Benchmark baseline recorder / regression comparator.

The reproduction's argument is quantitative, so every PR needs to be
judged against a recorded trajectory of the headline numbers: modeled
per-config times, the paper's speedup ratios, sweep throughput, and
cache effectiveness.  This tool maintains that trajectory:

* ``record`` evaluates a corpus slice and writes the headline metrics
  to a baseline JSON (default ``benchmarks/results/BENCH_baseline.json``);
* ``compare`` re-evaluates the same slice and flags any *gating*
  metric that drifted beyond ``--tolerance`` in its bad direction
  (modeled times up, speedups down), exiting 1 so CI can surface the
  regression.

Gating metrics are means of *modeled* quantities -- pure functions of
the corpus seeds and the cost model, so they are bit-stable across
machines and any drift is a real model change.  Wall-clock throughput
(``apps_per_second``) and cache ``hit_rate`` are machine- and
state-dependent, so they are recorded as *informational*: reported,
never gating.

Usage::

    python tools/bench_baseline.py record  [--apps 6] [--scale 0.1] [--out PATH]
    python tools/bench_baseline.py compare [--baseline PATH] [--tolerance 0.02]

``compare`` re-runs with the corpus parameters recorded in the
baseline unless ``--apps``/``--scale`` override them.  Exit codes:
0 = within tolerance, 1 = regression, 2 = usage/missing baseline.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without installation
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    import repro  # noqa: F401

#: Bump when the baseline JSON layout changes.
BASELINE_SCHEMA = 1

DEFAULT_BASELINE = "benchmarks/results/BENCH_baseline.json"

#: Gating metrics and the direction that counts as a regression.
#: "lower": higher-than-baseline is a regression (modeled times).
#: "higher": lower-than-baseline is a regression (speedups).
METRICS = {
    "plain_s": "lower",
    "mat_s": "lower",
    "grp_s": "lower",
    "full_s": "lower",
    "cpu_s": "lower",
    "plain_vs_cpu": "higher",
    "mat_speedup": "higher",
    "grp_speedup": "higher",
    "mer_speedup": "higher",
    "gdroid_speedup": "higher",
    "memory_ratio": "lower",
}

#: Machine/state-dependent metrics: recorded and reported, never gating.
INFORMATIONAL = ("apps_per_second", "hit_rate")

#: Worker-process counts the serving-throughput sweep records.
SERVE_WORKER_COUNTS = (1, 2, 4)

#: Sink category of the demand-driven informational metrics.
TARGETED_SINKS = "SMS"

#: ICC-resolution sweep shape: seeds per ground-truth scenario kind and
#: the base seed / generator scale of the sweep corpus.
ICC_SEEDS_PER_SCENARIO = 4
ICC_BASE_SEED = 993300
ICC_SCALE = 0.4

#: Informational metric names :func:`collect_icc_metrics` produces.
ICC_METRIC_NAMES = (
    "icc_resolved_fraction",
    "icc_receiver_shrinkage",
    "icc_linked_flows",
)


def serve_metric_names(counts: Sequence[int] = SERVE_WORKER_COUNTS) -> List[str]:
    """Informational metric names produced by :func:`collect_serve_metrics`."""
    return [f"serve_pool_jobs_per_s_w{count}" for count in counts]


def collect_metrics(rows: Sequence[Any], stats: Any) -> Dict[str, Any]:
    """Headline metric means over one evaluated corpus slice."""
    from repro.bench.harness import AppEvaluation

    evaluations = [row for row in rows if isinstance(row, AppEvaluation)]
    if not evaluations:
        raise ValueError("no evaluated rows to record")
    metrics = {
        name: statistics.mean(getattr(row, name) for row in evaluations)
        for name in METRICS
    }
    informational = {
        "apps_per_second": stats.apps_per_second if stats else 0.0,
        "hit_rate": stats.hit_rate if stats else 0.0,
    }
    return {"metrics": metrics, "informational": informational}


def collect_targeted_metrics(
    full_rows: Sequence[Any],
    corpus: Any,
    jobs: Optional[int] = None,
    no_cache: bool = False,
) -> Dict[str, Any]:
    """Demand-driven vetting metrics for one corpus slice.

    Informational only (merged into the baseline's ``informational``
    block by ``record``, never gating): the targeted path's cost is a
    function of where the generator happened to place sinks, so small
    slices have high variance.  ``targeted_speedup_modeled`` is the
    band-total modeled-time ratio for a single-sink query
    (:data:`TARGETED_SINKS`); ``None`` when every app was skipped (the
    query was answered entirely by the pre-scan, for free).
    """
    from repro.bench.harness import AppEvaluation, evaluate_corpus
    from repro.vetting.targeted import TargetSpec

    spec = TargetSpec.parse(TARGETED_SINKS)
    targeted_rows = evaluate_corpus(
        corpus, jobs=jobs, no_cache=no_cache, targets=spec
    )
    full_s = sum(
        row.full_s for row in full_rows if isinstance(row, AppEvaluation)
    )
    targeted_s = sum(
        row.full_s
        for row in targeted_rows
        if isinstance(row, AppEvaluation)
    )
    skipped = sum(
        1 for row in targeted_rows if not isinstance(row, AppEvaluation)
    )
    return {
        "targeted_sinks": TARGETED_SINKS,
        "targeted_skip_rate": (
            skipped / len(targeted_rows) if targeted_rows else 0.0
        ),
        "targeted_speedup_modeled": (
            full_s / targeted_s if targeted_s else None
        ),
    }


def collect_serve_metrics(
    corpus: Any, counts: Sequence[int] = SERVE_WORKER_COUNTS
) -> Dict[str, Any]:
    """Process-pool serving throughput at each worker count.

    Informational only: jobs/s through ``run_soak`` with the
    ``process`` pool is wall-clock (spawn/fork overhead, scheduler
    noise, core count), so it is recorded to show how throughput
    scales with worker processes, never gated.  Each sweep point runs
    against its own scratch state dir so partition stores from one
    count cannot leak into the next.
    """
    import shutil
    import tempfile

    from repro.serve import ServeConfig, run_soak
    from repro.serve.jobs import JobState

    metrics: Dict[str, Any] = {}
    for count in counts:
        state_dir = tempfile.mkdtemp(prefix="bench-serve-")
        try:
            report = run_soak(
                corpus,
                config=ServeConfig(
                    workers=count,
                    vet=False,
                    pool="process",
                    state_dir=state_dir,
                ),
            )
        finally:
            shutil.rmtree(state_dir, ignore_errors=True)
        done = sum(1 for job in report.jobs if job.state == JobState.DONE)
        metrics[f"serve_pool_jobs_per_s_w{count}"] = (
            done / report.wall_s if report.wall_s else 0.0
        )
    return metrics


def collect_icc_metrics(
    per_scenario: int = ICC_SEEDS_PER_SCENARIO,
    base_seed: int = ICC_BASE_SEED,
    scale: float = ICC_SCALE,
) -> Dict[str, Any]:
    """ICC target-resolution quality over the ground-truth sweep corpus.

    Informational only (the values are deterministic functions of the
    sweep seeds, but they measure *analysis precision*, not the cost
    model the gating metrics guard):

    * ``icc_resolved_fraction`` -- tainted sends classified better than
      ``over-approx`` (``exact`` or ``filtered``);
    * ``icc_receiver_shrinkage`` -- 1 minus the ratio of resolved
      receiver-set sizes to the legacy over-approximated sizes (0 when
      resolution never prunes anything);
    * ``icc_linked_flows`` -- inter-component leaks stitched across
      exactly-resolved edges.
    """
    from repro.apk.generator import (
        ICC_SCENARIOS,
        generate_app,
        icc_scenario_profile,
    )
    from repro.vetting.report import vet_app

    sends = resolved = 0
    over_receivers = resolved_receivers = 0
    linked = 0
    for kind_index, scenario in enumerate(ICC_SCENARIOS):
        profile = icc_scenario_profile(scenario, scale=scale)
        for offset in range(per_scenario):
            seed = base_seed + kind_index * per_scenario + offset
            app = generate_app(seed, profile)
            report = vet_app(app)
            legacy = vet_app(app, resolve_icc=False)
            over = {
                (flow.method, flow.send_label): flow.candidate_receivers
                for flow in legacy.icc_flows
            }
            for flow in report.icc_flows:
                sends += 1
                if flow.resolution != "over-approx":
                    resolved += 1
                resolved_receivers += len(flow.candidate_receivers)
                over_receivers += len(
                    over[(flow.method, flow.send_label)]
                )
            linked += len(report.linked_flows)
    return {
        "icc_resolved_fraction": resolved / sends if sends else 0.0,
        "icc_receiver_shrinkage": (
            1.0 - resolved_receivers / over_receivers
            if over_receivers
            else 0.0
        ),
        "icc_linked_flows": linked,
    }


@dataclass(frozen=True)
class Delta:
    """One metric's baseline-vs-current comparison."""

    metric: str
    baseline: float
    current: float
    #: Signed relative change: (current - baseline) / baseline.
    relative: float
    direction: str
    regressed: bool
    improved: bool

    def describe(self) -> str:
        state = (
            "REGRESSION"
            if self.regressed
            else ("improved" if self.improved else "ok")
        )
        return (
            f"{self.metric:16s} {self.baseline:12.6g} -> "
            f"{self.current:12.6g}  ({self.relative:+.2%})  {state}"
        )


@dataclass(frozen=True)
class Comparison:
    """Full comparator result for one baseline/current pair."""

    deltas: List[Delta]
    tolerance: float

    @property
    def regressions(self) -> List[Delta]:
        return [delta for delta in self.deltas if delta.regressed]

    @property
    def improvements(self) -> List[Delta]:
        return [delta for delta in self.deltas if delta.improved]

    @property
    def ok(self) -> bool:
        return not self.regressions


def compare_metrics(
    baseline: Dict[str, float],
    current: Dict[str, float],
    tolerance: float,
) -> Comparison:
    """Flag gating metrics that drifted beyond ``tolerance``.

    Drift in the *bad* direction (per :data:`METRICS`) beyond the
    tolerance is a regression; drift in the good direction beyond the
    tolerance is reported as an improvement (a hint to re-record the
    baseline) but never fails the comparison.
    """
    deltas: List[Delta] = []
    for metric, direction in METRICS.items():
        if metric not in baseline or metric not in current:
            continue
        base = float(baseline[metric])
        now = float(current[metric])
        relative = (now - base) / base if base else 0.0
        bad = relative > tolerance if direction == "lower" else relative < -tolerance
        good = relative < -tolerance if direction == "lower" else relative > tolerance
        deltas.append(
            Delta(
                metric=metric,
                baseline=base,
                current=now,
                relative=relative,
                direction=direction,
                regressed=bad,
                improved=good,
            )
        )
    return Comparison(deltas=deltas, tolerance=tolerance)


def _evaluate(apps: int, scale: float, jobs: Optional[int], no_cache: bool):
    from repro.apk.corpus import AppCorpus
    from repro.apk.generator import GeneratorProfile
    from repro.bench.harness import evaluate_corpus, last_run_stats

    corpus = AppCorpus(size=apps, profile=GeneratorProfile(scale=scale))
    rows = evaluate_corpus(corpus, jobs=jobs, no_cache=no_cache)
    return rows, last_run_stats(), corpus


def cmd_record(args: argparse.Namespace) -> int:
    rows, stats, corpus = _evaluate(
        args.apps, args.scale, args.jobs, args.no_cache
    )
    collected = collect_metrics(rows, stats)
    collected["informational"].update(
        collect_targeted_metrics(
            rows, corpus, jobs=args.jobs, no_cache=args.no_cache
        )
    )
    collected["informational"].update(collect_serve_metrics(corpus))
    collected["informational"].update(collect_icc_metrics())
    baseline = {
        "schema": BASELINE_SCHEMA,
        "version": repro.__version__,
        "corpus": {"apps": args.apps, "scale": args.scale},
        "metrics": collected["metrics"],
        "informational": collected["informational"],
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(baseline, sort_keys=True, indent=2) + "\n")
    print(f"recorded baseline of {len(METRICS)} gating metrics to {out}")
    for name, value in sorted(baseline["metrics"].items()):
        print(f"  {name:16s} {value:12.6g}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    path = Path(args.baseline)
    try:
        baseline = json.loads(path.read_text())
    except (OSError, ValueError) as error:
        print(f"error: cannot load baseline {path}: {error}", file=sys.stderr)
        return 2
    corpus = baseline.get("corpus", {})
    apps = args.apps or int(corpus.get("apps", 6))
    scale = args.scale or float(corpus.get("scale", 0.1))

    rows, stats, _ = _evaluate(apps, scale, args.jobs, args.no_cache)
    collected = collect_metrics(rows, stats)
    comparison = compare_metrics(
        baseline.get("metrics", {}), collected["metrics"], args.tolerance
    )

    if args.json:
        print(
            json.dumps(
                {
                    "tolerance": comparison.tolerance,
                    "ok": comparison.ok,
                    "deltas": [vars(delta) for delta in comparison.deltas],
                    "informational": {
                        "baseline": baseline.get("informational", {}),
                        "current": collected["informational"],
                    },
                },
                sort_keys=True,
                indent=2,
            )
        )
    else:
        print(
            f"baseline {path} ({apps} apps, scale {scale}), "
            f"tolerance {args.tolerance:.1%}:"
        )
        for delta in comparison.deltas:
            print(f"  {delta.describe()}")
        base_info = baseline.get("informational", {})
        for name in INFORMATIONAL:
            print(
                f"  {name:16s} {base_info.get(name, 0.0):12.6g} -> "
                f"{collected['informational'][name]:12.6g}  (informational)"
            )
        # Serve-pool throughput is measured by ``record`` only (three
        # pooled soaks are too slow for every compare); report the
        # recorded scaling so it stays visible in CI logs.
        for name in serve_metric_names():
            if name in base_info:
                print(
                    f"  {name:24s} {base_info[name]:12.6g}  "
                    "(informational, recorded)"
                )
        # ICC-resolution precision is deterministic but measured over
        # its own scenario sweep; ``record`` computes it, compare just
        # keeps the recorded values visible.
        for name in ICC_METRIC_NAMES:
            if name in base_info:
                print(
                    f"  {name:24s} {base_info[name]:12.6g}  "
                    "(informational, recorded)"
                )
        if comparison.regressions:
            names = ", ".join(d.metric for d in comparison.regressions)
            print(f"REGRESSION beyond {args.tolerance:.1%}: {names}")
        elif comparison.improvements:
            names = ", ".join(d.metric for d in comparison.improvements)
            print(f"ok (improvements worth re-recording: {names})")
        else:
            print("ok: all gating metrics within tolerance")
    return 0 if comparison.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bench_baseline",
        description="record / compare the benchmark headline baseline",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in ("record", "compare"):
        cmd = sub.add_parser(name)
        cmd.add_argument("--apps", type=int, default=6 if name == "record" else 0)
        cmd.add_argument(
            "--scale", type=float, default=0.1 if name == "record" else 0.0
        )
        cmd.add_argument("--jobs", type=int, default=None)
        cmd.add_argument("--no-cache", action="store_true")
    sub.choices["record"].add_argument("--out", default=DEFAULT_BASELINE)
    compare = sub.choices["compare"]
    compare.add_argument("--baseline", default=DEFAULT_BASELINE)
    compare.add_argument(
        "--tolerance", type=float, default=0.02,
        help="relative drift allowed before a gating metric regresses",
    )
    compare.add_argument("--json", action="store_true")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return {"record": cmd_record, "compare": cmd_compare}[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
