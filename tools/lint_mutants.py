#!/usr/bin/env python3
"""Mutation harness: measure `repro.lint` detector recall.

For every defect class the pass suite claims to catch, inject exactly
that defect into an otherwise-clean generated app and assert that the
lint run fires *exactly* the expected rule -- no silence (a recall
miss) and no collateral rules (an imprecise or overlapping pass).  The
harness also asserts the clean seeded corpus produces zero diagnostics,
so the mutants are measured against a genuinely quiet baseline.

Everything is deterministic: mutators pick the first applicable site
in generation order and draw no randomness, so a run is reproducible
bit-for-bit from ``--base-seed``/``--apps``/``--scale``.

FP-001 (compiled-plan bounds) has no IR-level mutator by design: it
audits the *transfer compiler's* output against the fact pools, and
well-formed IR cannot make the compiler emit an out-of-range id.  It
is exercised by a corrupted-plan unit test instead (see
``tests/test_lint.py``).

Usage::

    python tools/lint_mutants.py [--apps 12] [--scale 0.06] [--base-seed 2020]
    python tools/lint_mutants.py --packs

``--packs`` switches to the *rule-pack* mutation mode: for every
shipped pack, scenarios are frozen from the shipped document, the pack
is mutated (a sanitizer dropped, a severity flipped), and the scenario
gate must catch each mutation -- dropped sanitizer as false positives,
flipped severity as severity mismatches.  This proves the gate guards
the pack contents, not just the analysis code.

Exit code 0 iff the clean corpus is clean and every mutant is caught
by exactly its expected rule.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without installation
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apk.generator import AppGenerator, GeneratorProfile
from repro.ir.app import AndroidApp
from repro.ir.component import Component, ComponentKind
from repro.ir.expressions import (
    AccessExpr,
    NewExpr,
    VariableNameExpr,
)
from repro.ir.method import ExceptionHandler, Method, MethodSignature
from repro.ir.statements import (
    AssignmentStatement,
    CallStatement,
    EmptyStatement,
    GotoStatement,
    IfStatement,
    MonitorStatement,
    ReturnStatement,
    Statement,
    may_throw,
)
from repro.ir.types import OBJECT, VOID, ObjectType
from repro.lint import run_lint

#: Register name guaranteed unused by the generator (it emits v*/p*/a*).
GHOST = "ghost_reg"


# -- rebuild helpers ----------------------------------------------------------


def _rebuild(
    app: AndroidApp,
    methods: Optional[Sequence[Method]] = None,
    components: Optional[Sequence[Component]] = None,
) -> AndroidApp:
    return AndroidApp(
        package=app.package,
        components=list(app.components if components is None else components),
        methods=list(app.methods if methods is None else methods),
        global_fields=app.global_fields,
        category=app.category,
    )


def _swap_method(app: AndroidApp, position: int, method: Method) -> AndroidApp:
    methods = list(app.methods)
    methods[position] = method
    return _rebuild(app, methods=methods)


def _with_statement(method: Method, index: int, statement: Statement) -> Method:
    statements = list(method.statements)
    statements[index] = statement
    return Method(
        signature=method.signature,
        parameters=method.parameters,
        locals=method.locals,
        statements=statements,
        handlers=method.handlers,
    )


def _with_handlers(method: Method, handlers: Sequence[ExceptionHandler]) -> Method:
    return Method(
        signature=method.signature,
        parameters=method.parameters,
        locals=method.locals,
        statements=list(method.statements),
        handlers=list(handlers),
    )


def _object_vars(method: Method) -> Tuple[str, ...]:
    return method.object_variables()


def _primitive_vars(method: Method) -> Tuple[str, ...]:
    objects = set(method.object_variables())
    return tuple(n for n in method.variable_names() if n not in objects)


def _safe_sites(method: Method) -> Iterator[int]:
    """Indices whose statement can be replaced without side effects.

    Safe means: an ``EmptyStatement`` or a *non-throwing*
    ``AssignmentStatement`` that is not a catch head.  Replacing such a
    statement (keeping its label) with another non-throwing statement
    changes no CFG edge, and replacing it with a throwing one only adds
    exceptional edges -- either way reachability never shrinks, so no
    unrelated rule can start or stop firing.
    """
    heads = {handler.handler for handler in method.handlers}
    for index, statement in enumerate(method.statements):
        if statement.label in heads:
            continue
        if isinstance(statement, EmptyStatement):
            yield index
        elif isinstance(statement, AssignmentStatement) and not may_throw(statement):
            yield index


def _internal_calls(app: AndroidApp, method: Method) -> Iterator[int]:
    for index, statement in enumerate(method.statements):
        if (
            isinstance(statement, CallStatement)
            and statement.callee in app.method_table
        ):
            yield index


# -- mutators -----------------------------------------------------------------
#
# Each mutator takes a clean app and returns a mutated copy, or None
# when the app has no applicable site (the harness then tries the next
# app).  Mutators are deterministic: first applicable site wins.


def mutate_fall_off_end(app: AndroidApp) -> Optional[AndroidApp]:
    """Replace a final return with a nop: control falls off the end."""
    for position, method in enumerate(app.methods):
        if method.statements and isinstance(method.statements[-1], ReturnStatement):
            last = len(method.statements) - 1
            mutated = _with_statement(
                method, last, EmptyStatement(label=method.statements[last].label)
            )
            return _swap_method(app, position, mutated)
    return None


def mutate_empty_body(app: AndroidApp) -> Optional[AndroidApp]:
    """Add a method with no statements at all."""
    ghost = Method(
        signature=MethodSignature(f"{app.package}.Ghost", "empty", (), VOID),
        parameters=[],
        locals=[],
        statements=[],
        handlers=[],
    )
    return _rebuild(app, methods=list(app.methods) + [ghost])


def mutate_handler_in_range(app: AndroidApp) -> Optional[AndroidApp]:
    """Extend a protected range to swallow its own handler."""
    for position, method in enumerate(app.methods):
        if not method.handlers:
            continue
        handler = method.handlers[0]
        widened = ExceptionHandler(
            start=handler.start, end=handler.handler, handler=handler.handler
        )
        return _swap_method(
            app, position, _with_handlers(method, [widened] + list(method.handlers[1:]))
        )
    return None


def mutate_bad_catch_head(app: AndroidApp) -> Optional[AndroidApp]:
    """Replace a catch head so it no longer binds the exception."""
    for position, method in enumerate(app.methods):
        if not method.handlers:
            continue
        head = method.index_of(method.handlers[0].handler)
        mutated = _with_statement(
            method, head, EmptyStatement(label=method.statements[head].label)
        )
        return _swap_method(app, position, mutated)
    return None


def mutate_arity_mismatch(app: AndroidApp) -> Optional[AndroidApp]:
    """Pass one argument too many to an internal callee."""
    for position, method in enumerate(app.methods):
        objects = _object_vars(method)
        if not objects:
            continue
        for index in _internal_calls(app, method):
            call = method.statements[index]
            mutated_call = CallStatement(
                label=call.label,
                callee=call.callee,
                args=tuple(call.args) + (objects[0],),
                result=call.result,
            )
            return _swap_method(
                app, position, _with_statement(method, index, mutated_call)
            )
    return None


def mutate_void_result(app: AndroidApp) -> Optional[AndroidApp]:
    """Bind a result register on a call to a void internal callee."""
    for position, method in enumerate(app.methods):
        objects = _object_vars(method)
        if not objects:
            continue
        for index in _internal_calls(app, method):
            call = method.statements[index]
            callee = app.method_table[call.callee]
            if call.result is not None or callee.signature.return_type != VOID:
                continue
            mutated_call = CallStatement(
                label=call.label,
                callee=call.callee,
                args=tuple(call.args),
                result=objects[0],
            )
            return _swap_method(
                app, position, _with_statement(method, index, mutated_call)
            )
    return None


def mutate_monitor_primitive(app: AndroidApp) -> Optional[AndroidApp]:
    """Point a monitor statement at a primitive register."""
    for position, method in enumerate(app.methods):
        primitives = _primitive_vars(method)
        if not primitives:
            continue
        for index, statement in enumerate(method.statements):
            if isinstance(statement, MonitorStatement):
                mutated = MonitorStatement(
                    label=statement.label,
                    enter=statement.enter,
                    operand=primitives[0],
                )
                return _swap_method(
                    app, position, _with_statement(method, index, mutated)
                )
    return None


def mutate_object_condition(app: AndroidApp) -> Optional[AndroidApp]:
    """Branch on an object register."""
    for position, method in enumerate(app.methods):
        objects = _object_vars(method)
        if not objects:
            continue
        for index, statement in enumerate(method.statements):
            if isinstance(statement, IfStatement):
                mutated = IfStatement(
                    label=statement.label,
                    condition=objects[0],
                    target=statement.target,
                )
                return _swap_method(
                    app, position, _with_statement(method, index, mutated)
                )
    return None


def mutate_undeclared_use(app: AndroidApp) -> Optional[AndroidApp]:
    """Read a register that is never declared nor defined."""
    for position, method in enumerate(app.methods):
        objects = _object_vars(method)
        if not objects:
            continue
        for index in _safe_sites(method):
            mutated = AssignmentStatement(
                label=method.statements[index].label,
                lhs=objects[0],
                rhs=VariableNameExpr(name=GHOST),
            )
            return _swap_method(
                app, position, _with_statement(method, index, mutated)
            )
    return None


def mutate_undeclared_def_use(app: AndroidApp) -> Optional[AndroidApp]:
    """Define an undeclared register at the entry, then read it."""
    for position, method in enumerate(app.methods):
        objects = _object_vars(method)
        sites = [i for i in _safe_sites(method)]
        if not objects or len(sites) < 2 or sites[0] != 0:
            continue
        define = AssignmentStatement(
            label=method.statements[0].label,
            lhs=GHOST,
            rhs=NewExpr(allocated=ObjectType("java.lang.Object")),
        )
        use = AssignmentStatement(
            label=method.statements[sites[1]].label,
            lhs=objects[0],
            rhs=VariableNameExpr(name=GHOST),
        )
        mutated = _with_statement(
            _with_statement(method, 0, define), sites[1], use
        )
        return _swap_method(app, position, mutated)
    return None


def mutate_dead_code(app: AndroidApp) -> Optional[AndroidApp]:
    """Insert an unconditional goto over the textual successor."""
    for position, method in enumerate(app.methods):
        count = len(method.statements)
        targeted = {
            label
            for statement in method.statements
            for label in statement.jump_targets()
        }
        targeted.update(handler.handler for handler in method.handlers)
        for index in _safe_sites(method):
            if index + 2 > count - 1:
                continue
            if method.statements[index + 1].label in targeted:
                continue  # the skipped statement would stay reachable
            mutated = GotoStatement(
                label=method.statements[index].label,
                target=method.statements[index + 2].label,
            )
            return _swap_method(
                app, position, _with_statement(method, index, mutated)
            )
    return None


def mutate_dangling_callee(app: AndroidApp) -> Optional[AndroidApp]:
    """Retarget an internal call at a method that does not exist."""
    for position, method in enumerate(app.methods):
        for index in _internal_calls(app, method):
            call = method.statements[index]
            params = OBJECT.descriptor() * len(call.args)
            returns = OBJECT.descriptor() if call.result else "V"
            mutated_call = CallStatement(
                label=call.label,
                callee=f"{app.package}.Ghost.m404({params}){returns}",
                args=tuple(call.args),
                result=call.result,
            )
            return _swap_method(
                app, position, _with_statement(method, index, mutated_call)
            )
    return None


def mutate_bad_callee_signature(app: AndroidApp) -> Optional[AndroidApp]:
    """Corrupt a callee signature string beyond parsing."""
    for position, method in enumerate(app.methods):
        for index in _internal_calls(app, method):
            call = method.statements[index]
            mutated_call = CallStatement(
                label=call.label,
                callee="???",
                args=tuple(call.args),
                result=call.result,
            )
            return _swap_method(
                app, position, _with_statement(method, index, mutated_call)
            )
    return None


def mutate_dead_component(app: AndroidApp) -> Optional[AndroidApp]:
    """Register a component with no callbacks at all."""
    ghost = Component(
        name=f"{app.package}.GhostComponent",
        kind=ComponentKind.ACTIVITY,
        callbacks={},
    )
    return _rebuild(app, components=list(app.components) + [ghost])


def mutate_no_lifecycle(app: AndroidApp) -> Optional[AndroidApp]:
    """Register a component whose callbacks skip the lifecycle set."""
    if not app.methods:
        return None
    ghost = Component(
        name=f"{app.package}.OrphanComponent",
        kind=ComponentKind.ACTIVITY,
        callbacks={"onClick": str(app.methods[0].signature)},
    )
    return _rebuild(app, components=list(app.components) + [ghost])


def mutate_strip_intent_filter(app: AndroidApp) -> Optional[AndroidApp]:
    """Unadvertise an exported component the app sends Intents to.

    Stripping the intent filters from an exported component whose kind
    some ICC send site targets leaves a reachable-but-unadvertised
    hijack surface -- exactly MAN-003's defect class.  The component
    keeps its lifecycle callbacks, so MAN-001/MAN-002 stay quiet.
    """
    from repro.ir.statements import callee_of
    from repro.vetting.sources_sinks import ICC_SEND_APIS

    send_kinds = {
        ICC_SEND_APIS[callee]
        for method in app.methods
        for statement in method.statements
        if (callee := callee_of(statement)) in ICC_SEND_APIS
    }
    if not send_kinds:
        return None
    for position, component in enumerate(app.components):
        if not (
            component.exported
            and component.intent_filters
            and component.callbacks
            and component.kind.value in send_kinds
        ):
            continue
        stripped = Component(
            name=component.name,
            kind=component.kind,
            callbacks=dict(component.callbacks),
            exported=True,
            intent_filters=[],
        )
        components = list(app.components)
        components[position] = stripped
        return _rebuild(app, components=components)
    return None


def mutate_primitive_alloc(app: AndroidApp) -> Optional[AndroidApp]:
    """Allocate an object into a primitive register (dropped GEN)."""
    for position, method in enumerate(app.methods):
        primitives = _primitive_vars(method)
        if not primitives:
            continue
        for index in _safe_sites(method):
            mutated = AssignmentStatement(
                label=method.statements[index].label,
                lhs=primitives[0],
                rhs=NewExpr(allocated=ObjectType("java.lang.Object")),
            )
            return _swap_method(
                app, position, _with_statement(method, index, mutated)
            )
    return None


def mutate_primitive_base_store(app: AndroidApp) -> Optional[AndroidApp]:
    """Store through a primitive base register (dropped heap store)."""
    for position, method in enumerate(app.methods):
        primitives = _primitive_vars(method)
        objects = _object_vars(method)
        if not primitives or not objects:
            continue
        for index in _safe_sites(method):
            mutated = AssignmentStatement(
                label=method.statements[index].label,
                lhs=primitives[0],
                rhs=VariableNameExpr(name=objects[0]),
                lhs_access=AccessExpr(base=primitives[0], field_name="fGhost"),
            )
            return _swap_method(
                app, position, _with_statement(method, index, mutated)
            )
    return None


#: (defect class, expected rule, mutator) -- one row per detector.
MUTATORS: List[Tuple[str, str, Callable[[AndroidApp], Optional[AndroidApp]]]] = [
    ("fall-off-end", "CFG-001", mutate_fall_off_end),
    ("empty-body", "CFG-002", mutate_empty_body),
    ("handler-in-range", "EXC-001", mutate_handler_in_range),
    ("bad-catch-head", "EXC-002", mutate_bad_catch_head),
    ("arity-mismatch", "TY-001", mutate_arity_mismatch),
    ("void-result", "TY-002", mutate_void_result),
    ("monitor-primitive", "TY-003", mutate_monitor_primitive),
    ("object-condition", "TY-004", mutate_object_condition),
    ("undeclared-def-use", "DBU-001", mutate_undeclared_def_use),
    ("undeclared-use", "DBU-002", mutate_undeclared_use),
    ("dead-code", "DEAD-001", mutate_dead_code),
    ("dangling-callee", "CG-001", mutate_dangling_callee),
    ("bad-callee-signature", "CG-002", mutate_bad_callee_signature),
    ("dead-component", "MAN-001", mutate_dead_component),
    ("no-lifecycle", "MAN-002", mutate_no_lifecycle),
    ("strip-intent-filter", "MAN-003", mutate_strip_intent_filter),
    ("primitive-alloc", "FP-002", mutate_primitive_alloc),
    ("primitive-base-store", "FP-003", mutate_primitive_base_store),
]


# -- rule-pack mutation mode --------------------------------------------------


def mutate_pack_drop_sanitizer(pack):
    """Strip every sanitizer API: suppressed flows must reappear."""
    from repro.rules import parse_pack

    document = pack.to_dict()
    document["apis"] = [
        api for api in document["apis"] if api["kind"] != "sanitizer"
    ]
    return parse_pack(document, origin=f"{pack.name}(drop-sanitizer)")


def mutate_pack_flip_severity(pack, expected_rules):
    """Flip the severity of a rule the scenarios expect to fire."""
    from repro.rules import parse_pack

    document = pack.to_dict()
    for section in ("taint_rules", "icc_rules"):
        for raw in document[section]:
            if raw["id"] in expected_rules:
                raw["severity"] = (
                    "info" if raw["severity"] != "info" else "critical"
                )
                return parse_pack(
                    document, origin=f"{pack.name}(flip-severity)"
                )
    return None


def run_pack_harness() -> int:
    """Mutate every shipped pack and assert the scenario gate objects.

    Scenarios (and their expected rule/severity) are frozen from the
    *shipped* pack; the mutated pack is then evaluated against those
    expectations, exactly how CI would catch an accidental pack edit.
    """
    from repro.rules import (
        evaluate_pack,
        load_pack,
        scenario_corpus,
        shipped_packs,
    )

    failures = 0
    for name in shipped_packs():
        pack = load_pack(name)
        scenarios = scenario_corpus(pack)
        expected_rules = {
            s.expected_rule for s in scenarios if s.expected_rule
        }

        baseline = evaluate_pack(pack, scenarios)
        if baseline.passed:
            print(f"ok   {name}: shipped pack passes its gate")
        else:
            failures += 1
            print(f"FAIL {name}: shipped pack fails: {baseline.summary()}")

        dropped = evaluate_pack(mutate_pack_drop_sanitizer(pack), scenarios)
        if dropped.false_positives > 0 and not dropped.passed:
            print(
                f"ok   {name}/drop-sanitizer: caught "
                f"({dropped.false_positives} false positive(s))"
            )
        else:
            failures += 1
            print(
                f"FAIL {name}/drop-sanitizer: gate did not object: "
                f"{dropped.summary()}"
            )

        flipped_pack = mutate_pack_flip_severity(pack, expected_rules)
        if flipped_pack is None:
            failures += 1
            print(f"FAIL {name}/flip-severity: no expected rule to flip")
            continue
        flipped = evaluate_pack(flipped_pack, scenarios)
        if flipped.severity_mismatches > 0 and not flipped.passed:
            print(
                f"ok   {name}/flip-severity: caught "
                f"({flipped.severity_mismatches} severity mismatch(es))"
            )
        else:
            failures += 1
            print(
                f"FAIL {name}/flip-severity: gate did not object: "
                f"{flipped.summary()}"
            )
    print(
        f"pack mutations: {'all caught' if not failures else f'{failures} missed'}"
    )
    return 0 if failures == 0 else 1


# -- harness ------------------------------------------------------------------


def run_harness(
    apps: int = 12,
    scale: float = 0.06,
    base_seed: int = 2020,
    only: Optional[str] = None,
) -> int:
    """Run the full matrix; print a report; return a process exit code.

    ``only`` restricts the matrix to a single defect class (still with
    the clean-corpus check), for a focused CI step.
    """
    mutators = MUTATORS
    if only is not None:
        mutators = [row for row in MUTATORS if row[0] == only]
        if not mutators:
            known = ", ".join(name for name, _, _ in MUTATORS)
            print(f"FAIL unknown defect class {only!r}; known: {known}")
            return 2
    profile = GeneratorProfile(scale=scale, layers_low=2, layers_high=4)
    generator = AppGenerator(profile)
    corpus = [generator.generate(base_seed + i) for i in range(apps)]

    failures = 0
    dirty = [app.package for app in corpus if not run_lint(app).is_clean]
    if dirty:
        failures += len(dirty)
        print(f"FAIL clean-corpus: {len(dirty)} app(s) not clean: {dirty}")
    else:
        print(f"ok   clean-corpus: {apps} generated apps, zero diagnostics")

    caught = 0
    for name, expected, mutator in mutators:
        mutated = None
        host = ""
        for app in corpus:
            mutated = mutator(app)
            if mutated is not None:
                host = app.package
                break
        if mutated is None:
            failures += 1
            print(f"FAIL {name}: no applicable site in {apps} apps")
            continue
        fired = set(run_lint(mutated).rules())
        if fired == {expected}:
            caught += 1
            print(f"ok   {name}: caught by exactly {expected} (in {host})")
        else:
            failures += 1
            print(
                f"FAIL {name}: expected exactly {{{expected}}}, "
                f"lint fired {sorted(fired) or '{}'} (in {host})"
            )

    total = len(mutators)
    recall = caught / total if total else 0.0
    print(
        f"recall: {caught}/{total} defect classes ({recall:.0%}); "
        f"clean corpus {'clean' if not dirty else 'DIRTY'}"
    )
    return 0 if failures == 0 else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--apps", type=int, default=12)
    parser.add_argument("--scale", type=float, default=0.06)
    parser.add_argument("--base-seed", type=int, default=2020)
    parser.add_argument(
        "--only", default=None, metavar="DEFECT",
        help="run a single defect class from the matrix (e.g. "
        "strip-intent-filter)",
    )
    parser.add_argument(
        "--packs", action="store_true",
        help="rule-pack mutation mode: assert the scenario gate catches "
        "a dropped sanitizer and a flipped severity in every shipped pack",
    )
    args = parser.parse_args(argv)
    if args.packs:
        return run_pack_harness()
    return run_harness(args.apps, args.scale, args.base_seed, args.only)


if __name__ == "__main__":
    sys.exit(main())
