#!/usr/bin/env python
"""CI guard: a CACHE_SCHEMA bump must document itself.

Every row in the on-disk evaluation cache is keyed under
``CACHE_SCHEMA`` (``src/repro/bench/cache.py``); bumping it silently
invalidates every operator's cache.  The module therefore keeps a
history comment block above the constant -- one ``#: N: reason`` line
per schema generation -- and this checker fails CI when the constant
is bumped without a matching history entry (or when history entries
skip a generation).

Usage::

    python tools/check_cache_schema.py [path/to/cache.py]

Exit codes: 0 = consistent, 1 = schema/history mismatch,
2 = could not parse the module at all.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

DEFAULT_MODULE = (
    Path(__file__).resolve().parent.parent / "src" / "repro" / "bench" / "cache.py"
)

SCHEMA_RE = re.compile(r"^CACHE_SCHEMA\s*=\s*(\d+)\s*$", re.MULTILINE)
HISTORY_RE = re.compile(r"^#:\s*(\d+):\s*\S", re.MULTILINE)


def check(text: str) -> list:
    """Problem strings for one cache.py source (empty = consistent)."""
    problems = []
    schema_match = SCHEMA_RE.search(text)
    if schema_match is None:
        return ["no `CACHE_SCHEMA = <int>` assignment found"]
    schema = int(schema_match.group(1))
    history = sorted(int(m.group(1)) for m in HISTORY_RE.finditer(text))
    if not history:
        return [f"CACHE_SCHEMA = {schema} but no `#: N: reason` history lines"]
    if schema > 1 and schema not in history:
        problems.append(
            f"CACHE_SCHEMA was bumped to {schema} without a matching "
            f"`#: {schema}: <why old rows are invalid>` history entry "
            f"(history covers: {history})"
        )
    missing = [
        generation
        for generation in range(2, schema + 1)
        if generation not in history
    ]
    if missing and missing != [schema]:
        problems.append(
            f"history skips generation(s) {missing}; every bump since "
            "schema 1 must document why it invalidated old rows"
        )
    stale = [generation for generation in history if generation > schema]
    if stale:
        problems.append(
            f"history documents generation(s) {stale} beyond "
            f"CACHE_SCHEMA = {schema}; bump the constant or drop the lines"
        )
    return problems


def main(argv) -> int:
    module = Path(argv[1]) if len(argv) > 1 else DEFAULT_MODULE
    try:
        text = module.read_text()
    except OSError as error:
        print(f"error: cannot read {module}: {error}", file=sys.stderr)
        return 2
    problems = check(text)
    if problems:
        for problem in problems:
            print(f"cache-schema guard: {problem}", file=sys.stderr)
        return 1
    schema = int(SCHEMA_RE.search(text).group(1))
    print(f"cache-schema guard: CACHE_SCHEMA = {schema}, history consistent")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
