#!/usr/bin/env python3
"""Calibration harness: compare every headline statistic to the paper.

Runs a corpus slice through all engines and prints paper-vs-measured
rows for Figs. 1/4/8/9/10/11/12 and Tables I/II.  Used to tune the
cost tables in repro.gpu.spec / repro.cpu.* and the generator profile;
the benchmark suite prints the same rows from the same code paths.

Usage: python tools/calibrate.py [n_apps] [scale]
"""

from __future__ import annotations

import statistics
import sys
import time

from repro.apk.corpus import AppCorpus
from repro.apk.generator import GeneratorProfile
from repro.bench.harness import evaluate_app
from repro.bench.stats import percent_between, percent_below


def main() -> None:
    n_apps = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    corpus = AppCorpus(size=n_apps, profile=GeneratorProfile(scale=scale))

    rows = []
    t0 = time.time()
    for index in range(n_apps):
        rows.append(evaluate_app(corpus.app(index)))
    wall = time.time() - t0

    def col(name):
        return [getattr(r, name) for r in rows]

    plain_vs_cpu = [r.cpu_s / r.plain_s for r in rows]
    mat_x = [r.plain_s / r.mat_s for r in rows]
    grp_x = [r.mat_s / r.grp_s for r in rows]
    mer_x = [r.grp_s / r.full_s for r in rows]
    all_x = [r.plain_s / r.full_s for r in rows]
    mem_ratio = [r.mat_mem / r.set_mem for r in rows]
    frac = [r.ama_idfg_s / r.ama_total_s for r in rows]

    print(f"== calibration over {n_apps} apps (scale {scale}), wall {wall:.1f}s ==")
    print(f"{'metric':34s} {'paper':>18s} {'measured':>24s}")

    def row(name, paper, measured):
        print(f"{name:34s} {paper:>18s} {measured:>24s}")

    row("Table I cfg nodes (avg)", "6217",
        f"{statistics.mean(col('cfg_nodes')):.0f}")
    row("Table I methods (avg)", "268",
        f"{statistics.mean(col('methods')):.0f}")
    row("Table I variables (avg)", "116",
        f"{statistics.mean(col('variables')):.0f}")
    row("Table I max worklist (avg)", "74",
        f"{statistics.mean(col('max_worklist')):.0f}")

    row("Fig1 Amandroid max total", "~38 min",
        f"{max(col('ama_total_s'))/60:.1f} min")
    row("Fig1 IDFG fraction", "0.58-0.96",
        f"{min(frac):.2f}-{max(frac):.2f} (avg {statistics.mean(frac):.2f})")

    row("Fig4 plain-vs-CPU avg", "1.81x",
        f"{statistics.mean(plain_vs_cpu):.2f}x")
    row("Fig4 plain-vs-CPU max", "3.39x",
        f"{max(plain_vs_cpu):.2f}x")
    row("Fig4 % slower than CPU", "7.3%",
        f"{percent_below(plain_vs_cpu, 1.0):.1f}%")
    row("Fig4 % below 2x", "65.9%",
        f"{percent_below(plain_vs_cpu, 2.0):.1f}%")

    row("Fig9 MAT avg", "26.7x", f"{statistics.mean(mat_x):.1f}x")
    row("Fig9 MAT min/max", "7.6x / 92.4x",
        f"{min(mat_x):.1f}x / {max(mat_x):.1f}x")
    row("Fig9 MAT % in 20-40x", "59.4%",
        f"{percent_between(mat_x, 20, 40):.1f}%")

    row("Fig10 mem ratio avg", "0.25",
        f"{statistics.mean(mem_ratio):.3f}")
    row("Fig10 mem ratio max", "0.34", f"{max(mem_ratio):.3f}")

    row("Fig11 GRP % below 1.5x", "76.3%",
        f"{percent_below(grp_x, 1.5):.1f}%")
    row("Fig11 GRP % below 1x", "15.5%",
        f"{percent_below(grp_x, 1.0):.1f}%")
    row("Fig11 GRP typical", "~1.43x",
        f"avg {statistics.mean(grp_x):.2f}x max {max(grp_x):.2f}x")

    row("Fig12 MER avg", "1.94x", f"{statistics.mean(mer_x):.2f}x")
    row("Fig12 MER max", "4.76x", f"{max(mer_x):.2f}x")
    row("Fig12 MER % in 1.5-3x", "67.4%",
        f"{percent_between(mer_x, 1.5, 3.0):.1f}%")

    row("Fig8 all-opts avg", "71.3x", f"{statistics.mean(all_x):.1f}x")
    row("Fig8 all-opts peak", "128x", f"{max(all_x):.1f}x")

    iters_s = col("iterations_sync")
    iters_m = col("iterations_mer")
    row("TabII iters sync avg/max/min", "5.6K/6.8K/4.3K",
        f"{statistics.mean(iters_s)/1e3:.1f}K/{max(iters_s)/1e3:.1f}K/{min(iters_s)/1e3:.1f}K")
    row("TabII iters MER avg/max/min", "4.5K/5.8K/3.6K",
        f"{statistics.mean(iters_m)/1e3:.1f}K/{max(iters_m)/1e3:.1f}K/{min(iters_m)/1e3:.1f}K")

    def size_mix(rows, attr):
        le32 = n3364 = gt64 = total = 0
        for r in rows:
            mix = getattr(r, attr)
            le32 += mix[0]
            n3364 += mix[1]
            gt64 += mix[2]
            total += sum(mix)
        return tuple(100.0 * x / total for x in (le32, n3364, gt64))

    s_mix = size_mix(rows, "wl_mix_sync")
    m_mix = size_mix(rows, "wl_mix_mer")
    row("TabII sizes sync <=32/33-64/>64", "87.6/4.3/8.1%",
        f"{s_mix[0]:.1f}/{s_mix[1]:.1f}/{s_mix[2]:.1f}%")
    row("TabII sizes MER  <=32/33-64/>64", "74.4/11.9/13.7%",
        f"{m_mix[0]:.1f}/{m_mix[1]:.1f}/{m_mix[2]:.1f}%")


if __name__ == "__main__":
    main()
