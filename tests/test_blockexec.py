"""Block-runner tests: dynamics correctness and trace invariants.

The load-bearing property: every dynamics variant (synchronous, MER)
lands on the same least fixed point as the sequential oracle.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.callgraph import CallGraph, SBDALayering
from repro.cfg.environment import app_with_environments
from repro.core.blockexec import BlockRunner, WARP_SIZE
from repro.core.blocks import BlockAssignment, partition_layers
from repro.core.config import TuningParameters
from repro.core.engine import AppWorkload
from repro.dataflow.worklist import analyze_app_reference
from tests.conftest import tiny_app


def run_blocks(app, record_mer=True):
    """Mimic the engine's layer-by-layer block execution."""
    analyzed = app_with_environments(app) if app.components else app
    layering = SBDALayering(CallGraph(analyzed))
    partition = partition_layers(analyzed, layering, TuningParameters())
    summaries = {}
    results = []
    for layer_blocks in partition:
        layer_results = [
            BlockRunner(analyzed, a, summaries, record_mer=record_mer).run()
            for a in layer_blocks
        ]
        for result in layer_results:
            summaries.update(result.summaries)
        results.extend(layer_results)
    return results


class TestFixedPointAgreement:
    @pytest.mark.parametrize("seed", [0, 3, 9])
    def test_matches_sequential_oracle(self, seed):
        app = tiny_app(seed)
        workload = AppWorkload.build(app)
        reference = analyze_app_reference(app)
        assert workload.idfg.equivalent_to(reference), workload.idfg.diff(
            reference
        )

    def test_mer_equals_sync_is_asserted_internally(self, demo_app):
        # BlockRunner asserts mer_facts == sync facts; reaching here
        # without AssertionError is the test.
        results = run_blocks(demo_app, record_mer=True)
        assert all(r.trace_mer is not None for r in results)


class TestTraceInvariants:
    def test_visits_bounded_by_worklist(self, demo_app):
        for result in run_blocks(demo_app):
            for trace in (result.trace_sync, result.trace_mer):
                for iteration in trace.iterations:
                    assert len(iteration.visits) <= iteration.worklist_size

    def test_mer_processes_at_most_one_warp(self, demo_app):
        for result in run_blocks(demo_app):
            for iteration in result.trace_mer.iterations:
                assert len(iteration.visits) <= WARP_SIZE

    def test_sync_processes_whole_worklist(self, demo_app):
        for result in run_blocks(demo_app):
            for iteration in result.trace_sync.iterations:
                assert len(iteration.visits) == iteration.worklist_size

    def test_first_visit_flags(self, demo_app):
        for result in run_blocks(demo_app):
            seen = set()
            for iteration in result.trace_sync.iterations:
                for visit in iteration.visits:
                    if visit.first_visit:
                        assert visit.node not in seen
                    seen.add(visit.node)

    def test_growth_entries_reference_real_nodes(self, demo_app):
        for result in run_blocks(demo_app):
            count = result.trace_sync.node_count
            for iteration in result.trace_sync.iterations:
                for node, size in iteration.growth:
                    assert 0 <= node < count
                    assert size > 0

    def test_node_meta_consistency(self, demo_app):
        for result in run_blocks(demo_app):
            meta = result.trace_sync.node_meta
            grouped = sorted(m.grouped_position for m in meta)
            assert grouped == list(range(len(meta)))
            for m in meta:
                assert all(0 <= s < len(meta) for s in m.successors)
                assert 0 <= m.group <= 2
                assert 0 <= m.branch_class < 25

    def test_mer_dedup(self, demo_app):
        """MER worklists contain no duplicate entries (Fig. 7)."""
        for result in run_blocks(demo_app):
            for iteration in result.trace_mer.iterations:
                nodes = [v.node for v in iteration.visits]
                assert len(nodes) == len(set(nodes))


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=100, max_value=400))
def test_dynamics_agree_on_random_apps(seed):
    """Property: parallel dynamics == sequential oracle on random apps."""
    app = tiny_app(seed)
    workload = AppWorkload.build(app)
    reference = analyze_app_reference(app)
    assert workload.idfg.equivalent_to(reference)
