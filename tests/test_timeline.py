"""Chrome-trace timeline export tests."""

import json

import pytest

from repro.core.config import GDroidConfig
from repro.core.engine import AppWorkload, GDroid
from repro.gpu.timeline import export_chrome_trace, kernel_timeline_events
from tests.conftest import tiny_app


@pytest.fixture(scope="module")
def priced():
    workload = AppWorkload.build(tiny_app(9))
    return GDroid(GDroidConfig.all_optimizations()).price(workload)


class TestTimeline:
    def test_events_cover_every_block_and_launch(self, priced):
        events = kernel_timeline_events(priced.kernels)
        launches = [e for e in events if e["cat"] == "launch"]
        blocks = [e for e in events if e["cat"] == "block"]
        assert len(launches) == len(priced.kernels)
        assert len(blocks) == sum(len(k.block_costs) for k in priced.kernels)

    def test_spans_do_not_overlap_per_slot(self, priced):
        events = kernel_timeline_events(priced.kernels)
        by_slot = {}
        for event in events:
            if event["cat"] != "block":
                continue
            by_slot.setdefault(event["tid"], []).append(
                (event["ts"], event["ts"] + event["dur"])
            )
        for spans in by_slot.values():
            spans.sort()
            for (_, end), (start, _) in zip(spans, spans[1:]):
                assert start >= end - 1e-9

    def test_layers_are_sequential(self, priced):
        """A layer's blocks never start before the previous layer ends."""
        events = kernel_timeline_events(priced.kernels)
        launches = sorted(
            (e for e in events if e["cat"] == "launch"), key=lambda e: e["ts"]
        )
        blocks = [e for e in events if e["cat"] == "block"]
        for first, second in zip(launches, launches[1:]):
            previous_blocks = [
                b for b in blocks if first["ts"] <= b["ts"] < second["ts"]
            ]
            for block in previous_blocks:
                assert block["ts"] + block["dur"] <= second["ts"] + 1e-6

    def test_export_writes_valid_json(self, priced, tmp_path):
        path = tmp_path / "trace.json"
        count = export_chrome_trace(priced.kernels, str(path))
        document = json.loads(path.read_text())
        assert len(document["traceEvents"]) == count
        assert document["metadata"]["device"].startswith("NVIDIA")
        args = document["traceEvents"][-1].get("args", {})
        assert "node_visits" in args or document["traceEvents"][-1]["cat"] == "launch"
