"""The ``repro.lint`` verifier: rules, determinism, gates, acceptance."""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import sys
from pathlib import Path

import pytest

from repro.apk.corpus import AppCorpus
from repro.apk.generator import AppGenerator
from repro.apk.loader import load_gdx, save_gdx
from repro.bench.harness import (
    AppEvaluation,
    LintErrorRow,
    _CACHE,
    evaluate_corpus,
)
from repro.core.engine import AppWorkload
from repro.dataflow.facts import FactSpace
from repro.dataflow.transfer import TransferFunctions
from repro.ir.parser import parse_app
from repro.lint import (
    JSON_SCHEMA_VERSION,
    PASSES,
    RULES,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    LintError,
    check_app,
    run_lint,
)
from repro.lint.factpool import FactPoolPass
from repro.vetting.report import vet_workload

from tests.conftest import LEAKY_APP_SOURCE, TINY_PROFILE, tiny_app

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
import lint_mutants  # noqa: E402


def _lint_rules(source: str):
    return run_lint(parse_app(source)).rules()


_HEADER = """
app com.t category tools
component com.t.Main activity exported
  callback onCreate com.t.Main.m()V
end
"""


# -- rule registry ------------------------------------------------------------


class TestRegistry:
    def test_every_pass_rule_is_registered(self):
        for lint_pass in PASSES:
            for rule in lint_pass.rules:
                assert rule in RULES, f"{lint_pass.name} emits unknown {rule}"

    def test_severities_are_valid(self):
        for rule, (severity, description) in RULES.items():
            assert severity in (SEVERITY_WARNING, SEVERITY_ERROR)
            assert description, f"{rule} has no description"

    def test_pass_names_unique(self):
        names = [lint_pass.name for lint_pass in PASSES]
        assert len(names) == len(set(names))


# -- one hand-built app per pass ---------------------------------------------


class TestHandBuiltRules:
    def test_cfg_001_fall_off_end(self):
        source = _HEADER + """
method com.t.Main.m()V
  local i: I
  L0: i := 1
end
"""
        assert _lint_rules(source) == ("CFG-001",)

    def test_exc_001_handler_in_own_range(self):
        source = _HEADER + """
method com.t.Main.m()V
  local e: Ljava/lang/Object;
  L0: nop
  L1: e := Exception
  L2: return
  catch L1 from L0 to L1
end
"""
        assert _lint_rules(source) == ("EXC-001",)

    def test_exc_002_bad_catch_head(self):
        source = _HEADER + """
method com.t.Main.m()V
  local o: Ljava/lang/Object;
  L0: o := new java.lang.Object
  L1: nop
  L2: return
  catch L1 from L0 to L0
end
"""
        assert _lint_rules(source) == ("EXC-002",)

    def test_ty_001_arity_mismatch(self):
        source = _HEADER + """
method com.t.Main.m()V
  local o: Ljava/lang/Object;
  L0: o := new java.lang.Object
  L1: call com.t.Main.h(Ljava/lang/Object;)V(o, o)
  L2: return
end
method com.t.Main.h(Ljava/lang/Object;)V
  param p: Ljava/lang/Object;
  L0: return
end
"""
        assert _lint_rules(source) == ("TY-001",)

    def test_dbu_002_undeclared_use(self):
        source = _HEADER + """
method com.t.Main.m()V
  local o: Ljava/lang/Object;
  L0: o := ghost
  L1: return
end
"""
        assert _lint_rules(source) == ("DBU-002",)

    def test_dead_001_is_a_warning(self):
        source = _HEADER + """
method com.t.Main.m()V
  L0: goto L2
  L1: nop
  L2: return
end
"""
        report = run_lint(parse_app(source))
        assert report.rules() == ("DEAD-001",)
        assert not report.errors()
        check_app(parse_app(source))  # warnings never gate

    def test_cg_001_dangling_internal_callee(self):
        source = _HEADER + """
method com.t.Main.m()V
  L0: call com.t.Ghost.missing()V()
  L1: return
end
"""
        assert _lint_rules(source) == ("CG-001",)

    def test_man_002_no_lifecycle_callback(self):
        source = """
app com.t category tools
component com.t.Main activity exported
  callback onClick com.t.Main.m()V
end
method com.t.Main.m()V
  L0: return
end
"""
        report = run_lint(parse_app(source))
        assert report.rules() == ("MAN-002",)
        assert not report.errors()


# -- clean inputs stay clean --------------------------------------------------


class TestCleanApps:
    def test_demo_app_clean(self, demo_app):
        assert run_lint(demo_app).is_clean

    def test_leaky_app_clean(self, leaky_app):
        assert run_lint(leaky_app).is_clean

    @pytest.mark.parametrize("seed", [2020, 2021, 2022, 2023])
    def test_generated_corpus_clean(self, seed):
        assert run_lint(tiny_app(seed)).is_clean

    def test_generator_self_check_passes(self):
        app = AppGenerator(TINY_PROFILE, self_check=True).generate(99)
        assert app.method_count() > 0

    def test_generator_self_check_rejects_dirty_output(self, monkeypatch):
        import repro.lint as lint_module

        clean = AppGenerator(TINY_PROFILE).generate(99)
        dirty_report = run_lint(lint_mutants.mutate_fall_off_end(clean))
        assert not dirty_report.is_clean
        monkeypatch.setattr(lint_module, "run_lint", lambda app: dirty_report)
        with pytest.raises(LintError):
            AppGenerator(TINY_PROFILE, self_check=True).generate(99)


# -- determinism --------------------------------------------------------------


def _lint_seed_json(seed: int) -> str:
    return run_lint(tiny_app(seed)).to_json_text()


class TestDeterminism:
    def test_same_app_twice_byte_identical(self):
        app = tiny_app(2020)
        assert run_lint(app).to_json_text() == run_lint(app).to_json_text()

    def test_reparsed_app_identical(self, demo_app):
        from repro.ir.printer import print_app

        again = parse_app(print_app(demo_app))
        assert (
            run_lint(demo_app).to_json_text() == run_lint(again).to_json_text()
        )

    def test_fork_pool_matches_serial(self):
        seeds = [2020, 2021, 2022, 2023]
        serial = [_lint_seed_json(seed) for seed in seeds]
        try:
            context = multiprocessing.get_context("fork")
            with context.Pool(processes=2) as pool:
                forked = pool.map(_lint_seed_json, seeds)
        except (OSError, ValueError):
            pytest.skip("fork pool unavailable")
        assert forked == serial

    def test_strict_corpus_parallel_matches_serial(self):
        corpus = AppCorpus(size=4, base_seed=991100, profile=TINY_PROFILE)
        serial = evaluate_corpus(corpus, no_cache=True, jobs=1, strict=True)
        _CACHE.clear()
        parallel = evaluate_corpus(corpus, no_cache=True, jobs=2, strict=True)
        assert parallel == serial
        assert all(isinstance(row, AppEvaluation) for row in parallel)


# -- strict gate --------------------------------------------------------------


def _mutant_app():
    return lint_mutants.mutate_primitive_alloc(tiny_app(2020))


class TestStrictGate:
    def test_build_arg_gates(self):
        with pytest.raises(LintError) as excinfo:
            AppWorkload.build(_mutant_app(), lint_gate=True)
        assert "FP-002" in str(excinfo.value)

    def test_build_default_does_not_gate(self, monkeypatch):
        monkeypatch.delenv("REPRO_LINT_GATE", raising=False)
        AppWorkload.build(_mutant_app())

    def test_env_var_gates(self, monkeypatch):
        monkeypatch.setenv("REPRO_LINT_GATE", "1")
        with pytest.raises(LintError):
            AppWorkload.build(_mutant_app())

    def test_explicit_arg_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LINT_GATE", "1")
        AppWorkload.build(_mutant_app(), lint_gate=False)

    def test_strict_corpus_yields_lint_error_row(self, monkeypatch):
        corpus = AppCorpus(size=3, base_seed=991200, profile=TINY_PROFILE)
        real_app = corpus.app
        broken = lint_mutants.mutate_primitive_alloc(real_app(1))
        monkeypatch.setattr(
            corpus, "app", lambda i: broken if i == 1 else real_app(i)
        )
        rows = evaluate_corpus(corpus, no_cache=True, jobs=1, strict=True)
        assert [type(row).__name__ for row in rows] == [
            "AppEvaluation", "LintErrorRow", "AppEvaluation",
        ]
        row = rows[1]
        assert isinstance(row, LintErrorRow)
        assert row.index == 1
        assert row.rules == ("FP-002",)
        assert row.error_count >= 1
        # Rejections are never cached, even in-process.
        from repro.bench.cache import profile_fingerprint

        key = (corpus.base_seed, corpus.size, profile_fingerprint(TINY_PROFILE), 1)
        assert key not in _CACHE

    def test_non_strict_corpus_unaffected(self):
        corpus = AppCorpus(size=2, base_seed=991300, profile=TINY_PROFILE)
        rows = evaluate_corpus(corpus, no_cache=True, jobs=1, strict=False)
        assert all(isinstance(row, AppEvaluation) for row in rows)


# -- fact-pool sanitizer acceptance ------------------------------------------


#: The leaky app with the identifier carrier declared as a primitive:
#: ``id`` then has no fact-pool slot, the taint GEN at the source call
#: is silently dropped, and the unguarded pipeline misses the leak.
MISTYPED_LEAK_SOURCE = LEAKY_APP_SOURCE.replace(
    "local id: Ljava/lang/String;", "local id: I"
)


class TestFactPoolAcceptance:
    def test_seed_pipeline_misses_the_leak(self, leaky_app):
        baseline = vet_workload(leaky_app, AppWorkload.build(leaky_app))
        assert baseline.flows  # the well-typed app leaks, and we see it

        mistyped = parse_app(MISTYPED_LEAK_SOURCE)
        silent = vet_workload(mistyped, AppWorkload.build(mistyped))
        assert not silent.flows  # same leak, silently gone

    def test_lint_flags_the_dropped_fact(self):
        report = run_lint(parse_app(MISTYPED_LEAK_SOURCE))
        assert "FP-002" in report.rules()
        assert report.errors()

    def test_strict_gate_rejects_the_mistyped_app(self):
        with pytest.raises(LintError) as excinfo:
            AppWorkload.build(parse_app(MISTYPED_LEAK_SOURCE), lint_gate=True)
        assert "FP-002" in str(excinfo.value)

    def test_fp001_flags_out_of_range_plan(self):
        method = tiny_app(2020).methods[0]
        space = FactSpace(method)
        plans = TransferFunctions(space).plans
        corrupt = dataclasses.replace(plans[0], kill_slot=space.slot_count + 7)
        violations = [
            (what, value, bound)
            for what, value, bound in FactPoolPass._plan_indices(corrupt, space)
            if not 0 <= value < bound
        ]
        assert violations
        assert any(what == "kill slot" for what, _, _ in violations)

    def test_fp001_silent_on_real_plans(self):
        app = tiny_app(2020)
        for method in app.methods:
            if not method.statements:
                continue
            space = FactSpace(method)
            for plan in TransferFunctions(space).plans:
                for _, value, bound in FactPoolPass._plan_indices(plan, space):
                    assert 0 <= value < bound


# -- JSON / report shape ------------------------------------------------------


class TestReportShape:
    def test_json_roundtrip_and_schema(self):
        report = run_lint(parse_app(MISTYPED_LEAK_SOURCE))
        payload = json.loads(report.to_json_text())
        assert payload["schema"] == JSON_SCHEMA_VERSION
        assert payload["package"] == "com.leaky"
        assert payload["clean"] is False
        assert payload["rules"] == list(report.rules())
        assert len(payload["diagnostics"]) == len(report.diagnostics)
        for entry in payload["diagnostics"]:
            assert set(entry) >= {
                "rule", "severity", "method", "label", "index", "message",
            }

    def test_render_mentions_rule_and_method(self):
        report = run_lint(parse_app(MISTYPED_LEAK_SOURCE))
        text = report.render()
        assert "FP-002" in text
        assert "com.leaky.Main.leak()V" in text

    def test_diagnostics_sorted(self):
        report = run_lint(
            parse_app(_HEADER + """
method com.t.Main.m()V
  local o: Ljava/lang/Object;
  L0: o := ghost
  L1: goto L3
  L2: nop
  L3: o := ghost2
  L4: return
end
""")
        )
        keys = [d.sort_key for d in report.diagnostics]
        assert keys == sorted(keys)
        assert set(report.rules()) == {"DBU-002", "DEAD-001"}


# -- mutation harness ---------------------------------------------------------


class TestMutationHarness:
    def test_full_recall_on_small_corpus(self, capsys):
        assert lint_mutants.run_harness(apps=4, scale=0.06) == 0
        out = capsys.readouterr().out
        assert "recall: 18/18" in out

    def test_matrix_covers_every_pass(self):
        expected = {rule for _, rule, _ in lint_mutants.MUTATORS}
        assert len(lint_mutants.MUTATORS) >= 8
        prefixes = {rule.split("-")[0] for rule in expected}
        assert prefixes == {"CFG", "EXC", "TY", "DBU", "DEAD", "CG", "MAN", "FP"}
        for rule in expected:
            assert rule in RULES


# -- CLI ----------------------------------------------------------------------


class TestLintCli:
    def test_corpus_clean_exit_zero(self, capsys):
        from repro.cli import main

        assert main(["lint", "--corpus", "2", "--scale", "0.06"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_missing_path_exit_two(self, capsys):
        from repro.cli import main

        assert main(["lint", "no-such-app.gdx"]) == 2
        assert "error" in capsys.readouterr().err

    def test_nothing_to_lint_exit_two(self, capsys):
        from repro.cli import main

        assert main(["lint"]) == 2

    def test_dirty_file_exit_one_and_stable_json(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "bad.gdx")
        save_gdx(_mutant_app(), path)
        assert main(["lint", path]) == 1
        capsys.readouterr()

        assert main(["lint", "--json", path]) == 1
        first = capsys.readouterr().out
        assert main(["lint", "--json", path]) == 1
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["schema"] == JSON_SCHEMA_VERSION
        assert payload["apps"][0]["rules"] == ["FP-002"]

    def test_loaded_file_roundtrips_lint(self, tmp_path, demo_app):
        path = str(tmp_path / "demo.gdx")
        save_gdx(demo_app, path)
        assert run_lint(load_gdx(path)).is_clean
