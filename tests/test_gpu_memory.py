"""Coalescing model tests, including a brute-force property check."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.memory import MemoryModel, transactions_for_addresses
from repro.gpu.spec import GPUSpec


class TestTransactionCounting:
    def test_fully_coalesced_warp(self):
        # 32 lanes x 4B, consecutive: exactly one 128B segment.
        addresses = [i * 4 for i in range(32)]
        assert transactions_for_addresses(addresses, 4) == 1

    def test_fully_scattered_warp(self):
        addresses = [i * 4096 for i in range(32)]
        assert transactions_for_addresses(addresses, 4) == 32

    def test_straddling_access(self):
        # 8 bytes starting at 124 cross a segment boundary.
        assert transactions_for_addresses([124], 8) == 2

    def test_duplicate_addresses_coalesce(self):
        assert transactions_for_addresses([0, 0, 0, 4], 4) == 1

    def test_empty(self):
        assert transactions_for_addresses([], 4) == 0


class TestMemoryModel:
    def test_region_isolation(self):
        model = MemoryModel()
        model.access(1, [0], 4)
        model.access(2, [0], 4)
        # Same element index, different regions: two transactions.
        assert model.transactions == 2

    def test_adjacent_elements_share_segment(self):
        model = MemoryModel()
        count = model.access(1, list(range(16)), 8)  # 16 x 8B = 128B
        assert count == 1

    def test_strided_elements_span_segments(self):
        model = MemoryModel()
        count = model.access(1, [0, 100, 200, 300], 64)
        assert count == 4

    def test_scattered_access_counts_lanes(self):
        model = MemoryModel()
        assert model.scattered_access(7) == 7
        assert model.scattered_access(0) == 0
        assert model.transactions == 7

    def test_waste_accounting(self):
        model = MemoryModel()
        model.access(1, [0], 4)  # 4 useful bytes of a 128B segment
        assert model.wasted_bytes == 124

    def test_reset(self):
        model = MemoryModel()
        model.access(1, [0], 4)
        model.reset()
        assert model.transactions == 0
        assert model.wasted_bytes == 0


@settings(max_examples=80, deadline=None)
@given(
    addresses=st.lists(
        st.integers(min_value=0, max_value=10_000), min_size=1, max_size=32
    ),
    access_bytes=st.sampled_from([1, 4, 8, 16, 32]),
)
def test_transaction_count_matches_brute_force(addresses, access_bytes):
    """Property: the fast counter equals an explicit byte-level model."""
    touched = set()
    for address in addresses:
        for byte in range(address, address + access_bytes):
            touched.add(byte // 128)
    assert transactions_for_addresses(addresses, access_bytes) == len(touched)
