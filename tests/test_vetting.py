"""Vetting layer: taint flows, DDG, reports."""

import pytest

from repro.core.engine import AppWorkload
from repro.ir.parser import parse_app
from repro.vetting.ddg import build_ddg
from repro.vetting.icc import IccFlow
from repro.vetting.report import _grade, vet_app, vet_workload
from repro.vetting.sources_sinks import (
    KIND_SINK,
    KIND_SOURCE,
    ApiEntry,
    ApiRegistry,
    flow_severity,
    is_sink,
    is_source,
)
from repro.vetting.taint import TaintAnalysis

SRC = "android.telephony.TelephonyManager.getDeviceId()Ljava/lang/String;"
SNK = "android.telephony.SmsManager.sendTextMessage(Ljava/lang/String;Ljava/lang/String;)V"
LOG = "android.util.Log.d(Ljava/lang/String;Ljava/lang/String;)I"


def analyze(source: str):
    app = parse_app(source)
    workload = AppWorkload.build(app, record_mer=False)
    analysis = TaintAnalysis(workload.analyzed_app, workload.idfg)
    return app, workload, analysis.run()


class TestSourcesSinks:
    def test_membership(self):
        assert is_source(SRC) and is_sink(SNK)
        assert not is_source(SNK) and not is_sink(SRC)

    def test_severity_pairs(self):
        assert flow_severity(SRC, SNK) == 9
        assert flow_severity(SRC, LOG) == 3


class TestFlowSeverityEdges:
    ACC = "android.accounts.AccountManager.getAccounts()[Landroid/accounts/Account;"
    FILE = "java.io.FileOutputStream.write(Ljava/lang/String;)V"

    def test_unlisted_pair_falls_back_to_sink_default(self):
        # (ACCOUNT, FILE) has no entry in FLOW_SEVERITY; the FILE
        # channel default applies.
        assert flow_severity(self.ACC, self.FILE) == 4

    def test_unknown_source_uses_sink_default(self):
        assert flow_severity("unknown.Api()V", SNK) == 7

    def test_unknown_sink_scores_middle_of_the_road(self):
        assert flow_severity(SRC, "unknown.Sink()V") == 5

    def test_accepts_raw_category_names(self):
        # Unregistered signatures pass through as category names, so
        # the table can be queried symbolically too.
        assert flow_severity("LOCATION", "NETWORK") == 8


class TestIccGrading:
    def _icc_flow(self, receivers):
        return IccFlow(
            method="a.B.m()V",
            send_label="L1",
            send_api="android.content.Context.startActivity(Landroid/content/Intent;)V",
            target_kind="activity",
            source_apis=(SRC,),
            candidate_receivers=receivers,
        )

    def test_no_flows_is_clean(self):
        assert _grade((), ()) == (0, "clean")

    def test_escaping_icc_flow_is_suspicious(self):
        flow = self._icc_flow(receivers=("com.other.Exposed",))
        assert flow.escapes_app
        assert _grade((), (flow,)) == (6, "suspicious")

    def test_internal_icc_flow_is_low_risk(self):
        flow = self._icc_flow(receivers=())
        assert not flow.escapes_app
        assert _grade((), (flow,)) == (3, "low-risk")


class TestRegistryValidation:
    def _entry(self, signature="a.B.x()V", kind=KIND_SOURCE,
               category="LOCATION", permission=None):
        return ApiEntry(signature, kind, category, permission)

    def test_duplicate_signature_rejected(self):
        with pytest.raises(ValueError, match="duplicate registry signature"):
            ApiRegistry([self._entry(), self._entry()])

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError, match="invalid kind"):
            ApiRegistry([self._entry(kind="sourceish")])

    def test_invalid_category_rejected(self):
        with pytest.raises(ValueError, match="invalid category"):
            ApiRegistry([self._entry(category="")])

    def test_permission_conflict_rejected(self):
        entries = [
            self._entry("a.B.x()V", permission="android.permission.A"),
            self._entry("a.B.y()V", permission="android.permission.B"),
        ]
        with pytest.raises(ValueError, match="maps to both"):
            ApiRegistry(entries)

    def test_agreeing_permissions_accepted(self):
        registry = ApiRegistry(
            [
                self._entry("a.B.x()V", permission="android.permission.A"),
                self._entry("a.B.y()V", permission="android.permission.A"),
                self._entry("a.B.snk()V", kind=KIND_SINK, category="SMS"),
            ]
        )
        assert registry.category_permissions(KIND_SOURCE) == {
            "LOCATION": "android.permission.A"
        }
        assert registry.categories(kind=KIND_SINK) == ("SMS",)


class TestTaintDetection:
    def test_direct_leak(self, leaky_app):
        workload = AppWorkload.build(leaky_app, record_mer=False)
        flows = TaintAnalysis(workload.analyzed_app, workload.idfg).run()
        assert len(flows) >= 1
        flow = flows[0]
        assert flow.sink_api == SNK
        assert SRC in flow.source_apis
        assert flow.sink_category == "SMS"
        assert "UNIQUE_IDENTIFIER" in flow.source_categories

    def test_heap_laundering_detected(self, leaky_app):
        # The fixture stores the id into box.fData and reloads it; the
        # sink's first argument comes from the reload.
        workload = AppWorkload.build(leaky_app, record_mer=False)
        flows = TaintAnalysis(workload.analyzed_app, workload.idfg).run()
        labels = {f.sink_label for f in flows}
        assert "L4" in labels

    def test_clean_app_has_no_flows(self):
        _, _, flows = analyze(
            "app com.clean\n"
            "method a.B.m()V\n"
            "  local s: Ljava/lang/String;\n"
            '  L0: s := "static text"\n'
            f"  L1: call {LOG}(s, s)\n"
            "  L2: return\nend\n"
        )
        assert flows == []

    def test_interprocedural_return_flow(self):
        _, _, flows = analyze(
            "app com.inter\n"
            "method a.B.fetch()Ljava/lang/String;\n"
            "  local id: Ljava/lang/String;\n"
            f"  L0: call id := {SRC}()\n"
            "  L1: return id\nend\n"
            "method a.B.emit()V\n"
            "  local v: Ljava/lang/String;\n"
            "  L0: call v := a.B.fetch()Ljava/lang/String;()\n"
            f"  L1: call {SNK}(v, v)\n"
            "  L2: return\nend\n"
        )
        assert any(f.method == "a.B.emit()V" for f in flows)

    def test_interprocedural_param_flow(self):
        _, _, flows = analyze(
            "app com.inter2\n"
            "method a.B.emit(Ljava/lang/String;)V\n"
            "  param data: Ljava/lang/String;\n"
            f"  L0: call {SNK}(data, data)\n"
            "  L1: return\nend\n"
            "method a.B.top()V\n"
            "  local id: Ljava/lang/String;\n"
            f"  L0: call id := {SRC}()\n"
            "  L1: call a.B.emit(Ljava/lang/String;)V(id)\n"
            "  L2: return\nend\n"
        )
        assert any(f.method == "a.B.emit(Ljava/lang/String;)V" for f in flows)

    def test_global_channel_flow(self):
        _, _, flows = analyze(
            "app com.glob\n"
            "method a.B.stash()V\n"
            "  local id: Ljava/lang/String;\n"
            f"  L0: call id := {SRC}()\n"
            "  L1: @@a.G.cache := id\n"
            "  L2: return\nend\n"
            "method a.B.dump()V\n"
            "  local v: Ljava/lang/String;\n"
            "  L0: v := @@a.G.cache\n"
            f"  L1: call {SNK}(v, v)\n"
            "  L2: return\nend\n"
        )
        assert any(f.method == "a.B.dump()V" for f in flows)

    def test_external_laundering(self):
        append = "java.lang.StringBuilder.append(Ljava/lang/String;)Ljava/lang/String;"
        _, _, flows = analyze(
            "app com.launder\n"
            "method a.B.m()V\n"
            "  local id: Ljava/lang/String;\n"
            "  local out: Ljava/lang/String;\n"
            f"  L0: call id := {SRC}()\n"
            f"  L1: call out := {append}(id)\n"
            f"  L2: call {SNK}(out, out)\n"
            "  L3: return\nend\n"
        )
        assert flows


class TestDDG:
    def test_def_use_edges(self, leaky_app):
        workload = AppWorkload.build(leaky_app, record_mer=False)
        ddgs = build_ddg(workload.analyzed_app, workload.idfg)
        ddg = ddgs["com.leaky.Main.leak()V"]
        # The sink at L4 depends on the source call at L0.
        assert ddg.reaches("L0", "L4")
        path = ddg.witness_path("L0", "L4")
        assert path is not None and path[0] == "L0" and path[-1] == "L4"

    def test_unrelated_nodes_do_not_reach(self, leaky_app):
        workload = AppWorkload.build(leaky_app, record_mer=False)
        ddgs = build_ddg(workload.analyzed_app, workload.idfg)
        clean = ddgs["com.leaky.Main.clean()V"]
        assert not clean.reaches("L1", "L0")


class TestReport:
    def test_leaky_report(self, leaky_app):
        report = vet_app(leaky_app)
        assert report.verdict == "likely-malicious"
        assert report.risk_score == 9
        assert report.is_suspicious
        assert "android.permission.READ_PHONE_STATE" in report.implied_permissions
        assert report.analysis_time_s > 0
        assert "SMS" in report.summary()

    def test_clean_report(self):
        app = parse_app(
            "app com.clean\n"
            "method a.B.m()V\n  L0: return\nend\n"
        )
        workload = AppWorkload.build(app, record_mer=False)
        report = vet_workload(app, workload)
        assert report.verdict == "clean"
        assert report.risk_score == 0
        assert not report.is_suspicious
