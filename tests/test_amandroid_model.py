"""Amandroid pipeline-model decomposition tests (Fig. 1 machinery)."""

import dataclasses

import pytest

from repro.core.engine import AppWorkload
from repro.cpu.amandroid import (
    AmandroidCostTable,
    AmandroidModel,
    DEFAULT_AMANDROID_COSTS,
)
from tests.conftest import tiny_app


@pytest.fixture(scope="module")
def workload():
    return AppWorkload.build(tiny_app(19))


class TestDecomposition:
    def test_fraction_is_idfg_over_total(self, workload):
        timing = AmandroidModel().analyze(workload)
        expected = timing.idfg_cycles / timing.total_cycles
        assert timing.idfg_fraction == pytest.approx(expected)

    def test_zero_visit_workload_edge(self):
        # A components-free app with a single trivial method.
        from repro.ir.parser import parse_app

        app = parse_app("app p\nmethod a.B.m()V\n  L0: return\nend\n")
        workload = AppWorkload.build(app)
        timing = AmandroidModel().analyze(workload)
        assert timing.frontend_cycles > 0
        assert 0.0 <= timing.idfg_fraction < 1.0

    def test_frontend_scales_with_code_size_only(self, workload):
        costs = dataclasses.replace(
            DEFAULT_AMANDROID_COSTS, visit_cycles=0.0, fact_cycles=0.0
        )
        timing = AmandroidModel(costs=costs).analyze(workload)
        assert timing.idfg_cycles == 0.0
        expected = (
            costs.frontend_base_cycles
            + costs.frontend_cycles_per_node * workload.profile.cfg_nodes
        )
        assert timing.frontend_cycles == pytest.approx(expected)

    def test_plugin_charges_facts_and_nodes(self, workload):
        costs = AmandroidCostTable(
            frontend_cycles_per_node=0.0,
            frontend_base_cycles=0.0,
            visit_cycles=0.0,
            fact_cycles=0.0,
            plugin_cycles_per_fact=1.0,
            plugin_cycles_per_node=0.0,
        )
        timing = AmandroidModel(costs=costs).analyze(workload)
        assert timing.plugin_cycles == pytest.approx(
            workload.idfg.total_fact_count()
        )

    def test_visit_costs_dominate_defaults(self, workload):
        """Fig. 1's claim needs the IDFG stage to dominate by default."""
        timing = AmandroidModel().analyze(workload)
        assert timing.idfg_cycles > timing.frontend_cycles
        assert timing.idfg_cycles > timing.plugin_cycles
