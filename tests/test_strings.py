"""Interprocedural string-constant lattice tests (repro.dataflow.strings)."""

from repro.cfg.icfg import build_icfg
from repro.dataflow.strings import (
    BOTTOM,
    TOP,
    StringConstantSolver,
    const,
    const_value,
    is_const,
)
from repro.ir.parser import parse_app


def solve(source: str, roots=None) -> StringConstantSolver:
    app = parse_app(source)
    icfg = build_icfg(app, roots=roots or tuple(app.method_table))
    solver = StringConstantSolver(app, icfg=icfg)
    solver.solve()
    return solver


class TestLatticeHelpers:
    def test_const_round_trip(self):
        wrapped = const("com.a.Target")
        assert is_const(wrapped)
        assert const_value(wrapped) == "com.a.Target"

    def test_sentinels_are_not_constants(self):
        # The tuple wrapper exists so a program string can never
        # collide with the sentinel strings of the base lattice.
        assert not is_const(TOP)
        assert not is_const(BOTTOM)
        assert not is_const("top")
        assert const_value(const("top")) == "top"
        assert const_value(TOP) is None


STRAIGHT_LINE = """
app com.s category tools
component com.s.Main activity exported
  callback onCreate com.s.Main.run()V
end
method com.s.Main.run()V
  local a: Ljava/lang/String;
  local b: Ljava/lang/String;
  local c: Ljava/lang/String;
  local n: I
  L0: a := "com.s."
  L1: b := "Target"
  L2: c := a + b
  L3: n := 7
  L4: b := a
  L5: return
end
"""


class TestIntraprocedural:
    def test_literal_copy_and_concat(self):
        solver = solve(STRAIGHT_LINE)
        env = solver.environment_at("com.s.Main.run()V", "L5")
        assert const_value(env.of("a")) == "com.s."
        assert const_value(env.of("c")) == "com.s.Target"
        assert const_value(env.of("b")) == "com.s."

    def test_integer_literal_kills_to_top(self):
        solver = solve(STRAIGHT_LINE)
        env = solver.environment_at("com.s.Main.run()V", "L5")
        assert env.of("n") is TOP

    def test_unread_variable_is_bottom(self):
        solver = solve(STRAIGHT_LINE)
        env = solver.environment_at("com.s.Main.run()V", "L1")
        assert env.of("c") is BOTTOM


BRANCHY = """
app com.b category tools
component com.b.Main activity exported
  callback onCreate com.b.Main.run(I)V
end
method com.b.Main.run(I)V
  local x: Ljava/lang/String;
  local y: Ljava/lang/String;
  L0: if p0 then goto L3
  L1: x := "same"
  L2: goto L5
  L3: x := "same"
  L4: y := "other"
  L5: return
end
"""


class TestMeet:
    def test_agreeing_branches_stay_constant(self):
        solver = solve(BRANCHY)
        env = solver.environment_at("com.b.Main.run(I)V", "L5")
        assert const_value(env.of("x")) == "same"

    def test_one_sided_binding_survives_meet(self):
        # y is bound on only one path; meet with BOTTOM (absence)
        # keeps the constant rather than smashing it to TOP.
        solver = solve(BRANCHY)
        env = solver.environment_at("com.b.Main.run(I)V", "L5")
        assert const_value(env.of("y")) == "other"

    def test_disagreeing_branches_go_top(self):
        source = BRANCHY.replace('L3: x := "same"', 'L3: x := "else"')
        solver = solve(source)
        env = solver.environment_at("com.b.Main.run(I)V", "L5")
        assert env.of("x") is TOP


INTERPROC = """
app com.i category tools
component com.i.Main activity exported
  callback onCreate com.i.Main.run()V
end
method com.i.Main.run()V
  local t: Ljava/lang/String;
  local u: Ljava/lang/String;
  L0: t := "stale"
  L1: call t := com.i.Main.name()Ljava/lang/String;()
  L2: call u := java.util.UUID.randomUUID()Ljava/lang/String;()
  L3: return
end
method com.i.Main.name()Ljava/lang/String;
  local r: Ljava/lang/String;
  L0: r := "com.i.Target"
  L1: return r
end
"""


class TestInterprocedural:
    def test_internal_return_establishes_constant(self):
        solver = solve(INTERPROC)
        env = solver.environment_at("com.i.Main.run()V", "L3")
        assert const_value(env.of("t")) == "com.i.Target"

    def test_external_call_result_is_opaque(self):
        solver = solve(INTERPROC)
        env = solver.environment_at("com.i.Main.run()V", "L3")
        assert env.of("u") is TOP

    def test_internal_call_kills_stale_binding(self):
        # The pre-call constant "stale" must not survive the call: the
        # return edge is the only writer of the result variable.
        source = INTERPROC.replace(
            'L0: r := "com.i.Target"',
            "L0: call r := java.util.UUID.randomUUID()Ljava/lang/String;()",
        )
        solver = solve(source)
        env = solver.environment_at("com.i.Main.run()V", "L3")
        assert const_value(env.of("t")) != "stale"
        assert not is_const(env.of("t"))

    def test_plain_call_statement_kills_nothing_without_result(self):
        source = INTERPROC.replace(
            "call u := java.util.UUID.randomUUID()Ljava/lang/String;()",
            "call android.util.Log.d(Ljava/lang/String;)V(t)",
        )
        solver = solve(source)
        env = solver.environment_at("com.i.Main.run()V", "L3")
        assert const_value(env.of("t")) == "com.i.Target"
