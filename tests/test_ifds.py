"""IFDS tabulation solver tests + cross-validation with the plugin."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.environment import app_with_environments
from repro.core.engine import AppWorkload
from repro.dataflow.ifds import ZERO, IfdsSolver
from repro.ir.parser import parse_app
from repro.vetting.taint import TaintAnalysis
from tests.conftest import tiny_app

SRC = "android.telephony.TelephonyManager.getDeviceId()Ljava/lang/String;"
SNK = "android.telephony.SmsManager.sendTextMessage(Ljava/lang/String;Ljava/lang/String;)V"


def solve(source: str):
    app = parse_app(source)
    solver = IfdsSolver(app)
    solver.solve()
    return app, solver


class TestIntraprocedural:
    def test_direct_flow(self):
        _, solver = solve(
            "app p\nmethod a.B.m()V\n"
            "  local id: Ljava/lang/String;\n"
            "  local out: Ljava/lang/String;\n"
            f"  L0: call id := {SRC}()\n"
            "  L1: out := id\n"
            f"  L2: call {SNK}(out, out)\n"
            "  L3: return\nend\n"
        )
        flows = solver.sink_flows()
        assert flows and flows[0].tainted_argument == "out"

    def test_strong_update_kills_taint(self):
        _, solver = solve(
            "app p\nmethod a.B.m()V\n"
            "  local id: Ljava/lang/String;\n"
            f"  L0: call id := {SRC}()\n"
            '  L1: id := "clean"\n'
            f"  L2: call {SNK}(id, id)\n"
            "  L3: return\nend\n"
        )
        assert solver.sink_flows() == []

    def test_branch_join_keeps_taint(self):
        _, solver = solve(
            "app p\nmethod a.B.m()V\n"
            "  local id: Ljava/lang/String;\n"
            "  local c: I\n"
            f"  L0: call id := {SRC}()\n"
            "  L1: if c then goto L3\n"
            '  L2: id := "clean"\n'
            f"  L3: call {SNK}(id, id)\n"
            "  L4: return\nend\n"
        )
        assert solver.sink_flows()  # the tainted path survives the join

    def test_global_channel(self):
        _, solver = solve(
            "app p\n"
            "method a.B.m()V\n"
            "  local id: Ljava/lang/String;\n"
            "  local v: Ljava/lang/String;\n"
            f"  L0: call id := {SRC}()\n"
            "  L1: @@a.G.c := id\n"
            "  L2: v := @@a.G.c\n"
            f"  L3: call {SNK}(v, v)\n"
            "  L4: return\nend\n"
        )
        assert solver.sink_flows()


class TestInterprocedural:
    def test_flow_through_return(self):
        _, solver = solve(
            "app p\n"
            "method a.B.fetch()Ljava/lang/String;\n"
            "  local id: Ljava/lang/String;\n"
            f"  L0: call id := {SRC}()\n"
            "  L1: return id\nend\n"
            "method a.B.top()V\n"
            "  local v: Ljava/lang/String;\n"
            "  L0: call v := a.B.fetch()Ljava/lang/String;()\n"
            f"  L1: call {SNK}(v, v)\n"
            "  L2: return\nend\n"
        )
        flows = solver.sink_flows()
        assert any(f.method == "a.B.top()V" for f in flows)

    def test_flow_through_parameter(self):
        _, solver = solve(
            "app p\n"
            "method a.B.emit(Ljava/lang/String;)V\n"
            "  param data: Ljava/lang/String;\n"
            f"  L0: call {SNK}(data, data)\n"
            "  L1: return\nend\n"
            "method a.B.top()V\n"
            "  local id: Ljava/lang/String;\n"
            f"  L0: call id := {SRC}()\n"
            "  L1: call a.B.emit(Ljava/lang/String;)V(id)\n"
            "  L2: return\nend\n"
        )
        assert any(
            f.method == "a.B.emit(Ljava/lang/String;)V"
            for f in solver.sink_flows()
        )

    def test_context_sensitivity(self):
        """The identity callee must not conflate its two call sites."""
        _, solver = solve(
            "app p\n"
            "method a.B.id(Ljava/lang/String;)Ljava/lang/String;\n"
            "  param x: Ljava/lang/String;\n"
            "  L0: return x\nend\n"
            "method a.B.top()V\n"
            "  local dirty: Ljava/lang/String;\n"
            "  local clean: Ljava/lang/String;\n"
            "  local out1: Ljava/lang/String;\n"
            "  local out2: Ljava/lang/String;\n"
            f"  L0: call dirty := {SRC}()\n"
            '  L1: clean := "ok"\n'
            "  L2: call out1 := a.B.id(Ljava/lang/String;)Ljava/lang/String;(dirty)\n"
            "  L3: call out2 := a.B.id(Ljava/lang/String;)Ljava/lang/String;(clean)\n"
            f"  L4: call {SNK}(out2, out2)\n"
            f"  L5: call {SNK}(out1, out1)\n"
            "  L6: return\nend\n"
        )
        flows = solver.sink_flows()
        tainted_args = {f.tainted_argument for f in flows}
        assert "out1" in tainted_args
        assert "out2" not in tainted_args, "context conflation"

    def test_external_call_launders(self):
        append = "java.lang.StringBuilder.append(Ljava/lang/String;)Ljava/lang/String;"
        _, solver = solve(
            "app p\nmethod a.B.m()V\n"
            "  local id: Ljava/lang/String;\n"
            "  local out: Ljava/lang/String;\n"
            f"  L0: call id := {SRC}()\n"
            f"  L1: call out := {append}(id)\n"
            f"  L2: call {SNK}(out, out)\n"
            "  L3: return\nend\n"
        )
        assert solver.sink_flows()


class TestCrossValidation:
    def _plugin_flow_keys(self, app):
        workload = AppWorkload.build(app, record_mer=False)
        analysis = TaintAnalysis(workload.analyzed_app, workload.idfg)
        return {
            (flow.method, flow.sink_label) for flow in analysis.run()
        }

    @pytest.mark.parametrize("seed", [0, 2, 5, 8])
    def test_ifds_flows_subset_of_plugin(self, seed):
        """Every (heap-free) IFDS flow must be found by the points-to
        plugin too: two independent engines, one ground truth."""
        app = tiny_app(seed)
        analyzed = app_with_environments(app)
        solver = IfdsSolver(analyzed)
        solver.solve()
        ifds_keys = {
            (flow.method, flow.sink_label) for flow in solver.sink_flows()
        }
        plugin_keys = self._plugin_flow_keys(app)
        missing = ifds_keys - plugin_keys
        assert not missing, f"plugin missed IFDS-confirmed flows: {missing}"

    def test_cross_validation_on_leaky_fixture(self, leaky_app):
        analyzed = app_with_environments(leaky_app)
        solver = IfdsSolver(analyzed)
        solver.solve()
        ifds_keys = {
            (flow.method, flow.sink_label) for flow in solver.sink_flows()
        }
        plugin_keys = self._plugin_flow_keys(leaky_app)
        assert ifds_keys <= plugin_keys
        # The fixture's heap-laundered leak is plugin-only territory;
        # its direct second argument (the raw id) is IFDS-visible.
        assert ("com.leaky.Main.leak()V", "L4") in plugin_keys
