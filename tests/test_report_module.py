"""Aggregate-report generation tests."""

from pathlib import Path

import pytest

from repro.bench.harness import evaluate_app
from repro.bench.report import collect_results, render_markdown_report
from repro.cli import main
from tests.conftest import tiny_app


@pytest.fixture
def results_dir(tmp_path):
    directory = tmp_path / "results"
    directory.mkdir()
    (directory / "fig09_mat.txt").write_text("== Fig. 9 ==\nrow")
    (directory / "zz_custom.txt").write_text("custom section")
    (directory / "table1_dataset.txt").write_text("== Table I ==")
    return directory


class TestCollect:
    def test_canonical_order_then_extras(self, results_dir):
        names = [name for name, _ in collect_results(results_dir)]
        assert names == ["table1_dataset", "fig09_mat", "zz_custom"]

    def test_empty_directory(self, tmp_path):
        assert collect_results(tmp_path) == []


class TestRender:
    def test_sections_embedded(self, results_dir):
        text = render_markdown_report(results_dir)
        assert "## fig09_mat" in text
        assert "custom section" in text

    def test_headline_summary_from_rows(self, results_dir):
        rows = [evaluate_app(tiny_app(0))]
        text = render_markdown_report(results_dir, rows)
        assert "Headline summary" in text
        assert "MAT vs plain" in text

    def test_empty_results_note(self, tmp_path):
        text = render_markdown_report(tmp_path)
        assert "No persisted benchmark results" in text


class TestCliReport:
    def test_report_to_file(self, results_dir, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(
            ["report", "--results", str(results_dir), "--out", str(out)]
        ) == 0
        assert "experiment report" in out.read_text()

    def test_report_to_stdout(self, results_dir, capsys):
        assert main(["report", "--results", str(results_dir)]) == 0
        assert "fig09_mat" in capsys.readouterr().out
