"""Regression tests: strict-vs-cache, profile aliasing, limit=0, RNG.

Each test pins one of the harness/cache correctness bugs fixed in the
run-ledger PR:

* ``evaluate_corpus(strict=True)`` used to serve cached rows without
  re-running the lint gate;
* cache keys hashed only the generator ``scale``, so corpora with the
  same scale but different layer bounds aliased;
* an explicit ``limit=0`` evaluated the whole corpus;
* the in-process fallback of ``evaluate_parallel`` reseeded the global
  ``random`` module, perturbing caller RNG state;
* corrupt on-disk cache entries were re-parsed every sweep instead of
  being deleted.
"""

from __future__ import annotations

import random
import sys
from pathlib import Path

import repro.lint as lint_module
from repro.apk.corpus import AppCorpus
from repro.apk.generator import GeneratorProfile
from repro.bench.cache import EvaluationCache, profile_fingerprint
from repro.bench.harness import (
    AppEvaluation,
    LintErrorRow,
    evaluate_corpus,
    last_run_stats,
)
from repro.bench.parallel import _evaluate_chunk, evaluate_parallel
from tests.conftest import TINY_PROFILE

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
import lint_mutants  # noqa: E402


# -- strict runs must re-verify cached rows -----------------------------------


class TestStrictVsCache:
    def test_warm_cache_rows_are_relinted(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        corpus = AppCorpus(size=2, base_seed=880100, profile=TINY_PROFILE)
        warm = evaluate_corpus(corpus)

        linted = []
        real_check = lint_module.check_app
        monkeypatch.setattr(
            lint_module,
            "check_app",
            lambda app: (linted.append(app.package), real_check(app))[1],
        )
        rows = evaluate_corpus(corpus, strict=True)
        stats = last_run_stats()
        assert stats.process_hits == 2  # served from cache...
        assert len(linted) == 2  # ...but every row passed the gate anyway
        assert stats.strict_relints == 2
        assert rows == warm

    def test_warm_disk_cache_rows_are_relinted(self, tmp_path, monkeypatch):
        from repro.bench.harness import _CACHE

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        corpus = AppCorpus(size=2, base_seed=880150, profile=TINY_PROFILE)
        evaluate_corpus(corpus)
        _CACHE.clear()  # force the disk-hit path

        linted = []
        real_check = lint_module.check_app
        monkeypatch.setattr(
            lint_module,
            "check_app",
            lambda app: (linted.append(app.package), real_check(app))[1],
        )
        evaluate_corpus(corpus, strict=True)
        stats = last_run_stats()
        assert stats.disk_hits == 2
        assert len(linted) == 2

    def test_poisoned_cached_row_is_rejected(self, tmp_path, monkeypatch):
        """A cached row for an app that *no longer* lints clean must not
        be served by a strict run -- the old behaviour leaked it."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        corpus = AppCorpus(size=2, base_seed=880200, profile=TINY_PROFILE)
        evaluate_corpus(corpus)  # caches both rows

        real_app = corpus.app
        broken = lint_mutants.mutate_primitive_alloc(real_app(1))
        monkeypatch.setattr(
            corpus, "app", lambda i: broken if i == 1 else real_app(i)
        )
        rows = evaluate_corpus(corpus, strict=True)
        assert isinstance(rows[0], AppEvaluation)
        assert isinstance(rows[1], LintErrorRow)
        assert rows[1].rules == ("FP-002",)
        assert last_run_stats().process_hits == 2

    def test_non_strict_runs_skip_the_relint(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        corpus = AppCorpus(size=2, base_seed=880250, profile=TINY_PROFILE)
        evaluate_corpus(corpus)
        monkeypatch.setattr(
            lint_module,
            "check_app",
            lambda app: (_ for _ in ()).throw(AssertionError("gate ran")),
        )
        rows = evaluate_corpus(corpus)  # warm, non-strict: no lint calls
        assert len(rows) == 2
        assert last_run_stats().strict_relints == 0


# -- cache keys must cover the full generator profile -------------------------


class TestProfileAliasing:
    def test_fingerprint_covers_every_knob(self):
        base = GeneratorProfile(scale=0.06, layers_low=2, layers_high=4)
        same = GeneratorProfile(scale=0.06, layers_low=2, layers_high=4)
        bounds = GeneratorProfile(scale=0.06, layers_low=3, layers_high=5)
        loops = GeneratorProfile(scale=0.06, layers_low=2, layers_high=4,
                                 loop_probability=0.9)
        assert profile_fingerprint(base) == profile_fingerprint(same)
        assert profile_fingerprint(base) != profile_fingerprint(bounds)
        assert profile_fingerprint(base) != profile_fingerprint(loops)

    def test_same_scale_different_bounds_never_share_rows(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        scale = 0.06
        a = AppCorpus(
            size=2, base_seed=880300,
            profile=GeneratorProfile(scale=scale, layers_low=2, layers_high=4),
        )
        b = AppCorpus(
            size=2, base_seed=880300,
            profile=GeneratorProfile(scale=scale, layers_low=3, layers_high=5),
        )
        rows_a = evaluate_corpus(a)
        rows_b = evaluate_corpus(b)
        stats = last_run_stats()
        # Corpus B was evaluated from scratch: nothing aliased.
        assert stats.process_hits == 0
        assert stats.disk_hits == 0
        assert stats.evaluated == 2
        # And the two corpora genuinely differ.
        assert rows_a != rows_b

    def test_rerun_still_hits_its_own_rows(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        profile = GeneratorProfile(scale=0.06, layers_low=2, layers_high=4)
        corpus = AppCorpus(size=2, base_seed=880350, profile=profile)
        first = evaluate_corpus(corpus)
        again = evaluate_corpus(
            AppCorpus(size=2, base_seed=880350, profile=profile)
        )
        assert last_run_stats().process_hits == 2
        assert again == first


# -- limit semantics ----------------------------------------------------------


class TestLimit:
    def test_limit_zero_yields_zero_rows(self):
        corpus = AppCorpus(size=2, base_seed=880400, profile=TINY_PROFILE)
        rows = evaluate_corpus(corpus, limit=0, no_cache=True)
        assert rows == []
        stats = last_run_stats()
        assert stats.apps == 0
        assert stats.evaluated == 0

    def test_limit_none_means_whole_corpus(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        corpus = AppCorpus(size=2, base_seed=880450, profile=TINY_PROFILE)
        assert len(evaluate_corpus(corpus)) == 2

    def test_negative_limit_clamps_to_zero(self):
        corpus = AppCorpus(size=2, base_seed=880460, profile=TINY_PROFILE)
        assert evaluate_corpus(corpus, limit=-3, no_cache=True) == []

    def test_limit_above_size_clamps_to_size(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        corpus = AppCorpus(size=2, base_seed=880470, profile=TINY_PROFILE)
        assert len(evaluate_corpus(corpus, limit=99)) == 2


# -- RNG isolation ------------------------------------------------------------


class TestRngIsolation:
    def test_in_process_fallback_preserves_caller_rng(self):
        corpus = AppCorpus(size=2, base_seed=880500, profile=TINY_PROFILE)
        random.seed(12345)
        expected_state = random.getstate()
        expected_draws = [random.random() for _ in range(3)]
        random.seed(12345)
        # Single index -> one chunk -> the in-process fallback path.
        rows = evaluate_parallel(corpus, [0], jobs=4)
        assert set(rows) == {0}
        assert random.getstate() == expected_state
        assert [random.random() for _ in range(3)] == expected_draws

    def test_chunk_worker_body_restores_rng(self):
        corpus = AppCorpus(size=2, base_seed=880550, profile=TINY_PROFILE)
        random.seed(999)
        state = random.getstate()
        rows, spans, counters = _evaluate_chunk(
            (corpus.base_seed, corpus.size, TINY_PROFILE, (0,), False, False)
        )
        assert random.getstate() == state
        assert rows[0][0] == 0
        assert spans == [] and counters == {}

    def test_chunk_rows_match_serial(self):
        corpus = AppCorpus(size=2, base_seed=880560, profile=TINY_PROFILE)
        parallel_rows = evaluate_parallel(corpus, [0, 1], jobs=1)
        serial = evaluate_corpus(corpus, no_cache=True, jobs=1)
        assert [parallel_rows[i] for i in (0, 1)] == serial


# -- corrupt cache entries are purged -----------------------------------------


class TestCorruptCachePurge:
    def test_unparsable_entry_is_deleted(self, tmp_path):
        cache = EvaluationCache(root=tmp_path)
        path = tmp_path / "deadbeef.json"
        path.write_text("{truncated")
        assert cache.load("deadbeef") is None
        assert not path.exists()
        assert cache.purged == 1
        assert cache.misses == 1
        # The next lookup is a plain miss, not another parse of a corpse.
        assert cache.load("deadbeef") is None
        assert cache.purged == 1

    def test_schema_mismatch_entry_is_deleted(self, tmp_path):
        cache = EvaluationCache(root=tmp_path)
        path = tmp_path / "oldrow.json"
        path.write_text('{"package": "com.a", "not_the_schema": 1}')
        assert cache.load("oldrow") is None
        assert not path.exists()
        assert cache.purged == 1

    def test_missing_entry_is_not_a_purge(self, tmp_path):
        cache = EvaluationCache(root=tmp_path)
        assert cache.load("absent") is None
        assert cache.purged == 0
        assert cache.misses == 1

    def test_purge_count_surfaces_in_run_stats(self, tmp_path, monkeypatch):
        from repro.bench.cache import config_fingerprint, row_key
        from repro.bench.harness import _CACHE, _CONFIGS

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        corpus = AppCorpus(size=1, base_seed=880600, profile=TINY_PROFILE)
        evaluate_corpus(corpus)
        _CACHE.clear()
        key = row_key(
            corpus.base_seed,
            corpus.size,
            profile_fingerprint(corpus.profile),
            0,
            config_fingerprint(_CONFIGS),
        )
        (tmp_path / f"{key}.json").write_text("garbage")
        evaluate_corpus(corpus)
        stats = last_run_stats()
        assert stats.cache_purged == 1
        assert stats.evaluated == 1
        assert "corrupt purged" in stats.summary()


# -- crash-orphaned temp files are swept on open ------------------------------


class TestStaleTmpSweep:
    """A writer killed between ``mkstemp`` and ``os.replace`` leaves a
    ``.tmp-*`` orphan no later store ever reclaims; opening the cache
    sweeps orphans older than the safety age."""

    @staticmethod
    def _orphan(root: Path, name: str, age_s: float) -> Path:
        import os
        import time

        path = root / name
        path.write_text("{}")
        stamp = time.time() - age_s
        os.utime(path, (stamp, stamp))
        return path

    def test_old_orphans_swept_fresh_ones_kept(self, tmp_path):
        old = self._orphan(tmp_path, ".tmp-dead1.json", age_s=7200.0)
        older = self._orphan(tmp_path, ".tmp-dead2.json", age_s=9000.0)
        fresh = self._orphan(tmp_path, ".tmp-live.json", age_s=1.0)
        row = self._orphan(tmp_path, "a-real-row.json", age_s=9000.0)
        cache = EvaluationCache(root=tmp_path)
        assert cache.tmp_purged == 2
        assert not old.exists() and not older.exists()
        assert fresh.exists(), "a live writer's temp file must survive"
        assert row.exists(), "only .tmp-* files are sweep candidates"

    def test_disabled_cache_never_touches_disk(self, tmp_path):
        orphan = self._orphan(tmp_path, ".tmp-dead.json", age_s=7200.0)
        cache = EvaluationCache(root=tmp_path, enabled=False)
        assert cache.tmp_purged == 0
        assert orphan.exists()

    def test_missing_root_is_a_clean_open(self, tmp_path):
        cache = EvaluationCache(root=tmp_path / "nope")
        assert cache.tmp_purged == 0

    def test_sweep_count_surfaces_in_run_stats(self, tmp_path, monkeypatch):
        from repro.bench.harness import _CACHE

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        self._orphan(tmp_path, ".tmp-dead.json", age_s=7200.0)
        _CACHE.clear()
        corpus = AppCorpus(size=1, base_seed=880700, profile=TINY_PROFILE)
        evaluate_corpus(corpus)
        stats = last_run_stats()
        assert stats.tmp_purged == 1
        assert "stale tmp swept" in stats.summary()
