"""CLI smoke tests (argument wiring and output shape)."""

import pytest

from repro.apk.loader import save_gdx
from repro.cli import main
from tests.conftest import tiny_app


@pytest.fixture
def gdx_path(tmp_path):
    path = tmp_path / "app.gdx"
    save_gdx(tiny_app(0), path)
    return str(path)


def test_generate(tmp_path, capsys):
    out = str(tmp_path / "generated.gdx")
    assert main(["generate", "--seed", "3", "--scale", "0.06", "--out", out]) == 0
    captured = capsys.readouterr().out
    assert "wrote" in captured and "methods" in captured


def test_analyze_single_config(gdx_path, capsys):
    assert main(["analyze", gdx_path, "--config", "mat"]) == 0
    captured = capsys.readouterr().out
    assert "mat" in captured and "IDFG" in captured


def test_analyze_all_configs(gdx_path, capsys):
    assert main(["analyze", gdx_path, "--all"]) == 0
    captured = capsys.readouterr().out
    for name in ("plain", "mat", "mat-grp", "full", "cpu"):
        assert name in captured


def test_vet_exit_codes(gdx_path, capsys, tmp_path):
    code = main(["vet", gdx_path])
    captured = capsys.readouterr().out
    assert "verdict" in captured
    assert code in (0, 2)

    # A known-leaky app must exit 2.
    from repro.ir.parser import parse_app
    from tests.conftest import LEAKY_APP_SOURCE

    leaky = tmp_path / "leaky.gdx"
    save_gdx(parse_app(LEAKY_APP_SOURCE), leaky)
    assert main(["vet", str(leaky)]) == 2


def test_corpus_stats(capsys):
    assert main(["corpus", "--apps", "3", "--scale", "0.06"]) == 0
    captured = capsys.readouterr().out
    assert "no. of CFG Nodes" in captured


def test_bench_rows(capsys):
    assert main(["bench", "--apps", "2", "--scale", "0.06"]) == 0
    captured = capsys.readouterr().out
    assert "MAT vs plain" in captured
    assert "GDroid vs plain" in captured


def test_analyze_timeline_export(gdx_path, tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main(["analyze", gdx_path, "--config", "full", "--timeline", str(out)]) == 0
    import json

    document = json.loads(out.read_text())
    assert document["traceEvents"]


def test_tune(gdx_path, capsys):
    assert main(["tune", gdx_path]) == 0
    captured = capsys.readouterr().out
    assert "optimum" in captured


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
