"""CLI smoke tests (argument wiring and output shape)."""

import pytest

from repro.apk.loader import save_gdx
from repro.cli import main
from tests.conftest import tiny_app


@pytest.fixture
def gdx_path(tmp_path):
    path = tmp_path / "app.gdx"
    save_gdx(tiny_app(0), path)
    return str(path)


def test_generate(tmp_path, capsys):
    out = str(tmp_path / "generated.gdx")
    assert main(["generate", "--seed", "3", "--scale", "0.06", "--out", out]) == 0
    captured = capsys.readouterr().out
    assert "wrote" in captured and "methods" in captured


def test_analyze_single_config(gdx_path, capsys):
    assert main(["analyze", gdx_path, "--config", "mat"]) == 0
    captured = capsys.readouterr().out
    assert "mat" in captured and "IDFG" in captured


def test_analyze_all_configs(gdx_path, capsys):
    assert main(["analyze", gdx_path, "--all"]) == 0
    captured = capsys.readouterr().out
    for name in ("plain", "mat", "mat-grp", "full", "cpu"):
        assert name in captured


def test_vet_exit_codes(gdx_path, capsys, tmp_path):
    code = main(["vet", gdx_path])
    captured = capsys.readouterr().out
    assert "verdict" in captured
    assert code in (0, 2)

    # A known-leaky app must exit 2.
    from repro.ir.parser import parse_app
    from tests.conftest import LEAKY_APP_SOURCE

    leaky = tmp_path / "leaky.gdx"
    save_gdx(parse_app(LEAKY_APP_SOURCE), leaky)
    assert main(["vet", str(leaky)]) == 2


def test_corpus_stats(capsys):
    assert main(["corpus", "--apps", "3", "--scale", "0.06"]) == 0
    captured = capsys.readouterr().out
    assert "no. of CFG Nodes" in captured


def test_bench_rows(capsys):
    assert main(["bench", "--apps", "2", "--scale", "0.06"]) == 0
    captured = capsys.readouterr().out
    assert "MAT vs plain" in captured
    assert "GDroid vs plain" in captured


def test_analyze_timeline_export(gdx_path, tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main(["analyze", gdx_path, "--config", "full", "--timeline", str(out)]) == 0
    import json

    document = json.loads(out.read_text())
    assert document["traceEvents"]


def test_tune(gdx_path, capsys):
    assert main(["tune", gdx_path]) == 0
    captured = capsys.readouterr().out
    assert "optimum" in captured


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


# -- stats/bench error paths ---------------------------------------------------


def test_stats_ledger_missing_file(tmp_path, capsys):
    missing = tmp_path / "nope.ledger.json"
    assert main(["stats", "--ledger", str(missing)]) == 2
    assert "error" in capsys.readouterr().err


def test_stats_ledger_corrupt_json(tmp_path, capsys):
    bad = tmp_path / "mangled.ledger.json"
    bad.write_text('{"stages": {,,')
    assert main(["stats", "--ledger", str(bad)]) == 2
    assert "corrupt ledger JSON" in capsys.readouterr().err


def test_stats_ledger_wrong_document_shape(tmp_path, capsys):
    wrong = tmp_path / "other.json"
    wrong.write_text('{"traceEvents": []}')
    assert main(["stats", "--ledger", str(wrong)]) == 2
    assert "not a run-ledger document" in capsys.readouterr().err


def test_stats_ledger_empty_trace_renders(tmp_path, capsys):
    """An exported-but-empty trace is valid input, not an error."""
    import json

    from repro.obs import Tracer
    from repro.obs.export import run_ledger

    empty = tmp_path / "empty.ledger.json"
    empty.write_text(json.dumps(run_ledger(Tracer())))
    assert main(["stats", "--ledger", str(empty)]) == 0
    assert "0 spans" in capsys.readouterr().out


def test_stats_ledger_offline_round_trip(tmp_path, capsys):
    """stats --profile export feeds straight back into stats --ledger."""
    prefix = str(tmp_path / "run")
    assert (
        main(["stats", "--apps", "2", "--scale", "0.06", "--profile", prefix])
        == 0
    )
    capsys.readouterr()
    assert main(["stats", "--ledger", f"{prefix}.ledger.json"]) == 0
    assert "run ledger" in capsys.readouterr().out


def test_bench_profile_unwritable_destination(tmp_path, capsys):
    prefix = str(tmp_path / "no" / "such" / "dir" / "run")
    code = main(
        ["bench", "--apps", "2", "--scale", "0.06", "--profile", prefix]
    )
    captured = capsys.readouterr()
    assert code == 1
    assert "cannot write profile" in captured.err
    # The run's own summary still lands before the failure.
    assert "corpus run" in captured.out


def test_stats_profile_unwritable_destination(tmp_path, capsys):
    prefix = str(tmp_path / "absent" / "run")
    code = main(
        ["stats", "--apps", "2", "--scale", "0.06", "--profile", prefix]
    )
    assert code == 1
    assert "cannot write profile" in capsys.readouterr().err


# -- serve / submit ------------------------------------------------------------


def test_serve_soak_with_injection_and_profile(tmp_path, capsys):
    prefix = str(tmp_path / "soak")
    code = main(
        [
            "serve",
            "--soak",
            "--apps",
            "8",
            "--scale",
            "0.06",
            "--workers",
            "2",
            "--inject",
            "worker-crash,oom",
            "--profile",
            prefix,
        ]
    )
    captured = capsys.readouterr().out
    assert code == 0
    assert "soak" in captured and "0 lost" in captured
    import json

    ledger = json.loads((tmp_path / "soak.ledger.json").read_text())
    assert ledger["counters"]["serve.submitted"] == 8
    assert ledger["counters"]["serve.completed"] == 8
    assert (tmp_path / "soak.trace.json").exists()


def test_serve_rejects_unknown_fault_kind(capsys):
    code = main(["serve", "--apps", "2", "--inject", "frobnicate"])
    assert code == 2
    assert "unknown fault kind" in capsys.readouterr().err


def test_serve_json_output(capsys):
    code = main(
        ["serve", "--apps", "3", "--scale", "0.06", "--json"]
    )
    assert code == 0
    import json

    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert len(payload["jobs"]) == 3


def test_serve_process_pool_crash_soak(tmp_path, capsys):
    code = main(
        [
            "serve", "--soak", "--apps", "6", "--scale", "0.06",
            "--workers", "2", "--pool", "process",
            "--inject", "worker-crash",
            "--journal", str(tmp_path / "journal.jsonl"),
            "--state-dir", str(tmp_path / "state"),
        ]
    )
    assert code == 0
    assert "0 lost" in capsys.readouterr().out
    assert (tmp_path / "journal.jsonl").exists()
    assert list((tmp_path / "state").glob("worker-*/*.json"))


def test_serve_crash_after_then_recover(tmp_path, capsys):
    journal = str(tmp_path / "journal.jsonl")
    state = str(tmp_path / "state")
    base = [
        "serve", "--apps", "6", "--scale", "0.06", "--workers", "2",
        "--pool", "process", "--journal", journal, "--state-dir", state,
    ]
    code = main(base + ["--crash-after", "2"])
    assert code == 3
    assert "service crashed" in capsys.readouterr().err
    code = main(base + ["--recover", "--soak"])
    assert code == 0
    assert "6 done" in capsys.readouterr().out


def test_serve_recover_requires_journal(capsys):
    code = main(["serve", "--apps", "2", "--recover"])
    assert code == 2
    assert "--recover needs --journal" in capsys.readouterr().err


def test_serve_watch_directory(tmp_path, capsys):
    inbox = tmp_path / "inbox"
    inbox.mkdir()
    for seed in (21, 22):
        save_gdx(tiny_app(seed), inbox / f"app-{seed}.gdx")
    (inbox / "STOP").touch()
    code = main(
        ["serve", "--watch", str(inbox), "--workers", "2", "--soak"]
    )
    assert code == 0
    assert "2 jobs" in capsys.readouterr().out


def test_submit_mixed_paths(gdx_path, tmp_path, capsys):
    bad = tmp_path / "bad.gdx"
    bad.write_bytes(b"junk")
    code = main(["submit", gdx_path, str(bad)])
    captured = capsys.readouterr().out
    assert code == 1  # one job failed structurally
    assert "done" in captured and "failed" in captured


def test_submit_clean_path_exits_zero(gdx_path, capsys):
    assert main(["submit", gdx_path]) == 0
    assert "job-0000" in capsys.readouterr().out
