"""Auto-tuner and multi-GPU model tests (the paper's future work)."""

import pytest

from repro.core.autotune import AutoTuner, TuningResult
from repro.core.config import GDroidConfig
from repro.core.engine import AppWorkload
from repro.core.multigpu import MultiGPUEngine, scaling_curve
from tests.conftest import tiny_app


@pytest.fixture(scope="module")
def workload():
    return AppWorkload.build(tiny_app(6))


class TestAutoTuner:
    def test_sweep_covers_grid(self):
        tuner = AutoTuner(
            GDroidConfig.mat_only(),
            methods_per_block_range=(1, 4),
            blocks_per_sm_range=(1, 8),
        )
        result = tuner.tune(tiny_app(6))
        assert isinstance(result, TuningResult)
        assert len(result.samples) == 4
        assert set(result.grid()) == {(1, 1), (1, 8), (4, 1), (4, 8)}

    def test_best_is_grid_minimum(self):
        tuner = AutoTuner(
            GDroidConfig.all_optimizations(),
            methods_per_block_range=(1, 4),
            blocks_per_sm_range=(1, 8),
        )
        result = tuner.tune(tiny_app(6))
        assert result.best_time_s == min(
            sample.modeled_time_s for sample in result.samples
        )
        key = (result.best.methods_per_block, result.best.blocks_per_sm)
        assert result.grid()[key] == result.best_time_s

    def test_contention_penalizes_high_occupancy(self):
        tuner = AutoTuner(
            GDroidConfig.all_optimizations(),
            methods_per_block_range=(4,),
            blocks_per_sm_range=(4, 16),
        )
        result = tuner.tune(tiny_app(6))
        grid = result.grid()
        assert grid[(4, 16)] >= grid[(4, 4)]


class TestMultiGPU:
    def test_single_device_matches_engine_shape(self, workload):
        result = MultiGPUEngine(1).analyze(workload)
        assert result.exchange_cycles == 0.0
        assert result.compute_cycles > 0
        assert result.modeled_time_s > 0

    def test_exchange_charged_beyond_one_device(self, workload):
        result = MultiGPUEngine(4).analyze(workload)
        assert result.exchange_cycles > 0

    def test_invalid_device_count(self):
        with pytest.raises(ValueError):
            MultiGPUEngine(0)

    def test_scaling_curve_monotone_devices(self, workload):
        curve = scaling_curve(workload, device_counts=(1, 2, 4))
        assert [point.devices for point in curve] == [1, 2, 4]
        # Compute share never increases with more devices.
        assert curve[2].compute_cycles <= curve[0].compute_cycles + 1e-6

    def test_scaling_is_sublinear(self, workload):
        curve = scaling_curve(workload, device_counts=(1, 8))
        speedup = curve[0].modeled_time_s / curve[1].modeled_time_s
        assert speedup < 8.0


class TestCorpusThroughput:
    def test_perfect_split(self):
        from repro.core.multigpu import corpus_throughput_cycles

        assert corpus_throughput_cycles([10.0, 10.0], 2) == 10.0
        assert corpus_throughput_cycles([10.0, 10.0], 1) == 20.0

    def test_bounded_by_largest_app(self):
        from repro.core.multigpu import corpus_throughput_cycles

        cycles = [100.0, 1.0, 1.0, 1.0]
        assert corpus_throughput_cycles(cycles, 4) == 100.0

    def test_empty_and_invalid(self):
        from repro.core.multigpu import corpus_throughput_cycles

        assert corpus_throughput_cycles([], 3) == 0.0
        with pytest.raises(ValueError):
            corpus_throughput_cycles([1.0], 0)
