"""Block-partitioning and SBDA-scheduling tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.callgraph import CallGraph, SBDALayering
from repro.cfg.environment import app_with_environments
from repro.core.blocks import block_count, partition_layers
from repro.core.config import TuningParameters
from repro.ir.parser import parse_app
from tests.conftest import tiny_app


def partition_for(app, methods_per_block=4):
    analyzed = app_with_environments(app) if app.components else app
    layering = SBDALayering(CallGraph(analyzed))
    return (
        analyzed,
        layering,
        partition_layers(
            analyzed, layering, TuningParameters(methods_per_block=methods_per_block)
        ),
    )


class TestPartitionInvariants:
    def test_block_count_matches_target_average(self, demo_app):
        analyzed, layering, partition = partition_for(demo_app, 2)
        for layer_index, blocks in enumerate(partition):
            methods = sum(len(s) for s in layering.layers[layer_index])
            if methods:
                assert len(blocks) == min(
                    len(layering.layers[layer_index]), -(-methods // 2)
                )

    def test_blocks_only_contain_same_layer_methods(self):
        app = tiny_app(21)
        analyzed, layering, partition = partition_for(app)
        for layer_index, blocks in enumerate(partition):
            for block in blocks:
                for signature in block.methods:
                    assert layering.layer_of(signature) == layer_index
                assert block.layer == layer_index

    def test_sccs_stay_together(self):
        app = parse_app(
            "app p\n"
            "method a.B.f()V\n  L0: call a.B.g()V()\n  L1: return\nend\n"
            "method a.B.g()V\n  L0: call a.B.f()V()\n  L1: return\nend\n"
            "method a.B.solo()V\n  L0: return\nend\n"
        )
        _, _, partition = partition_for(app, methods_per_block=1)
        scc_blocks = [
            block
            for layer in partition
            for block in layer
            if "a.B.f()V" in block.methods
        ]
        assert scc_blocks and "a.B.g()V" in scc_blocks[0].methods

    def test_block_ids_globally_unique(self):
        app = tiny_app(22)
        _, _, partition = partition_for(app)
        ids = [block.block_id for layer in partition for block in layer]
        assert len(ids) == len(set(ids))
        assert block_count(partition) == len(ids)

    def test_lpt_balances_statement_load(self):
        # Ten 10-statement methods into 5 blocks: 2 each, never 3+1 of
        # equal-size items.
        body = "".join(f"  L{i}: nop\n" for i in range(9)) + "  L9: return\n"
        methods = "".join(
            f"method a.B.m{k}()V\n{body}end\n" for k in range(10)
        )
        app = parse_app("app p\n" + methods)
        _, _, partition = partition_for(app, methods_per_block=2)
        sizes = [len(b.methods) for layer in partition for b in layer]
        assert sizes == [2] * 5


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=300),
    target=st.sampled_from([1, 2, 4, 8]),
)
def test_partition_covers_exactly_once(seed, target):
    """Property: every method lands in exactly one block."""
    app = tiny_app(seed)
    analyzed, _, partition = partition_for(app, target)
    assigned = [
        method for layer in partition for block in layer for method in block.methods
    ]
    assert sorted(assigned) == sorted(analyzed.method_table)
