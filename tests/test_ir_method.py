"""Unit tests for Method construction and validation."""

import pytest

from repro.ir.expressions import NewExpr
from repro.ir.method import ExceptionHandler, Method, MethodSignature, Parameter
from repro.ir.statements import (
    AssignmentStatement,
    EmptyStatement,
    GotoStatement,
    ReturnStatement,
)
from repro.ir.types import INT, OBJECT, VOID


def sig(name="m"):
    return MethodSignature(owner="a.B", name=name)


def test_signature_string():
    s = MethodSignature("a.B", "m", (OBJECT, INT), VOID)
    assert str(s) == "a.B.m(Ljava/lang/Object;I)V"
    assert s.qualified_name == "a.B.m"


def test_duplicate_labels_rejected():
    with pytest.raises(ValueError, match="duplicate label"):
        Method(sig(), statements=[
            EmptyStatement(label="L0"),
            EmptyStatement(label="L0"),
        ])


def test_unknown_jump_target_rejected():
    with pytest.raises(ValueError, match="jump target"):
        Method(sig(), statements=[GotoStatement(label="L0", target="L9")])


def test_handler_labels_validated():
    body = [EmptyStatement(label="L0"), ReturnStatement(label="L1")]
    with pytest.raises(ValueError, match="unknown"):
        Method(sig(), statements=body,
               handlers=[ExceptionHandler(start="L0", end="L1", handler="L9")])


def test_inverted_handler_range_rejected():
    body = [EmptyStatement(label="L0"), EmptyStatement(label="L1"),
            ReturnStatement(label="L2")]
    with pytest.raises(ValueError, match="inverted"):
        Method(sig(), statements=body,
               handlers=[ExceptionHandler(start="L1", end="L0", handler="L2")])


def test_index_and_statement_lookup():
    body = [EmptyStatement(label="La"), ReturnStatement(label="Lb")]
    method = Method(sig(), statements=body)
    assert method.index_of("Lb") == 1
    assert method.statement_at("La") is body[0]
    assert len(method) == 2
    assert method.entry is body[0]


def test_empty_method_has_no_entry():
    assert Method(sig()).entry is None


def test_variable_queries():
    method = Method(
        sig(),
        parameters=[Parameter("p", OBJECT), Parameter("n", INT)],
        locals=[Parameter("x", OBJECT)],
        statements=[ReturnStatement(label="L0")],
    )
    assert method.variable_names() == ("p", "n", "x")
    assert method.object_variables() == ("p", "x")


def test_callees_collected_in_order(demo_app):
    main = demo_app.method(
        "com.demo.Main.onCreate(Landroid/content/Intent;)V"
    )
    assert main.callees() == [
        "com.demo.Main.helper(Ljava/lang/Object;)Ljava/lang/Object;"
    ]
    assert main.has_calls


def test_iteration_yields_statements_in_order():
    body = [EmptyStatement(label=f"L{i}") for i in range(5)]
    method = Method(sig(), statements=body)
    assert list(method) == body
