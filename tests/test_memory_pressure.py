"""Device-memory-pressure path: sub-graph processing via dual buffers.

"The worklist algorithm can consume tens of GB memory during a single
Android App analysis, which could easily exceed the memory capacity of
the commodity GPU.  Once the excess happens, we have to divide the
ICFG to sub-graphs and process them in turn" (Section III-A1).  A tiny
simulated device forces that path.
"""

import dataclasses

import pytest

from repro.core.config import GDroidConfig
from repro.core.engine import AppWorkload, GDroid
from repro.gpu.spec import TESLA_P40
from tests.conftest import tiny_app


@pytest.fixture(scope="module")
def workload():
    return AppWorkload.build(tiny_app(12))


def tiny_device(memory_bytes: int):
    return dataclasses.replace(TESLA_P40, global_memory_bytes=memory_bytes)


class TestMemoryPressure:
    def test_oversubscribed_device_still_completes(self, workload):
        spec = tiny_device(16 * 1024)  # 16 KB "GPU"
        result = GDroid(GDroidConfig.plain(spec=spec)).price(workload)
        assert result.total_cycles > 0
        # The image no longer fits; chunked staging exposes transfer
        # time the kernels cannot hide.
        assert result.transfer_cycles > 0

    def test_dual_buffering_hides_chunked_transfers(self, workload):
        """The point of Section III-A1: once kernels overlap copies,
        only the *first* (now small) chunk's copy is exposed -- the
        chunked cramped device exposes less transfer time than the
        roomy device's single whole-image copy."""
        roomy = GDroid(GDroidConfig.plain()).price(workload)
        cramped = GDroid(
            GDroidConfig.plain(spec=tiny_device(16 * 1024))
        ).price(workload)
        assert 0 < cramped.transfer_cycles <= roomy.transfer_cycles
        # Compute is unchanged; total grows by at most the exposed copy.
        assert cramped.total_cycles <= roomy.total_cycles

    def test_kernel_cycles_unaffected_by_memory_size(self, workload):
        roomy = GDroid(GDroidConfig.plain()).price(workload)
        cramped = GDroid(
            GDroidConfig.plain(spec=tiny_device(16 * 1024))
        ).price(workload)
        assert cramped.kernel_cycles == pytest.approx(roomy.kernel_cycles)

    def test_mat_relieves_memory_pressure(self, workload):
        """MAT's -75% footprint is itself a capacity win: the matrix
        store fits devices the set store overflows."""
        set_bytes = workload.set_store_footprint()
        mat_bytes = workload.matrix_store_footprint()
        spec = tiny_device(int(mat_bytes * 1.5) + workload.staged_bytes())
        assert mat_bytes < spec.global_memory_bytes < set_bytes + workload.staged_bytes()
        mat = GDroid(GDroidConfig.mat_only(spec=spec)).price(workload)
        plain = GDroid(GDroidConfig.plain(spec=spec)).price(workload)
        # The set store oversubscribes this device; MAT does not.
        assert plain.memory_bytes > spec.global_memory_bytes - workload.staged_bytes()
        assert mat.memory_bytes + workload.staged_bytes() <= spec.global_memory_bytes
