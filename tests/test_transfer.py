"""Transfer-function semantics per statement kind, plus monotonicity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.facts import FactSpace
from repro.dataflow.summaries import MethodSummary
from repro.dataflow.transfer import TransferFunctions
from repro.ir.parser import parse_app


def compiled(body: str, params: str = "", summaries=None):
    from repro.ir.parser import _split_descriptors

    declares = "".join(
        f"  param a{i}: {d}\n"
        for i, d in enumerate(_split_descriptors(params))
    )
    app = parse_app(f"app p\nmethod a.B.m({params})V\n{declares}{body}end\n")
    method = app.method(f"a.B.m({params})V")
    footprints = (
        {sig: s.footprint() for sig, s in summaries.items()}
        if summaries
        else None
    )
    space = FactSpace(method, footprints)
    return space, TransferFunctions(space, summaries)


def named(space, facts):
    return {space.decode_named(f) for f in facts}


LOCALS = "  local x: Ljava/lang/Object;\n  local y: Ljava/lang/Object;\n"


class TestAssignments:
    def test_new_generates_site_and_kills_old(self):
        space, transfer = compiled(
            LOCALS + "  L0: x := new a.B\n  L1: x := new a.C\n  L2: return\n"
        )
        out0 = transfer.out_facts(0, set())
        assert named(space, out0) == {(("var", "x"), ("site", "L0", "a.B"))}
        out1 = transfer.out_facts(1, out0)
        assert named(space, out1) == {(("var", "x"), ("site", "L1", "a.C"))}

    def test_copy_propagates(self):
        space, transfer = compiled(
            LOCALS + "  L0: y := new a.B\n  L1: x := y\n  L2: return\n"
        )
        out = transfer.out_facts(1, transfer.out_facts(0, set()))
        assert (("var", "x"), ("site", "L0", "a.B")) in named(space, out)

    def test_field_store_then_load(self):
        space, transfer = compiled(
            LOCALS
            + "  L0: x := new a.B\n  L1: y := new a.C\n"
            + "  L2: x.f := y\n  L3: y := x.f\n  L4: return\n"
        )
        facts = set()
        for node in range(4):
            facts = transfer.out_facts(node, facts)
        assert (("var", "y"), ("site", "L1", "a.C")) in named(space, facts)

    def test_heap_store_is_weak(self):
        space, transfer = compiled(
            LOCALS
            + "  L0: x := new a.B\n  L1: x.f := x\n  L2: x.f := y\n  L3: return\n"
        )
        facts = set()
        for node in range(3):
            facts = transfer.out_facts(node, facts)
        site = space.site_instance("L0")
        heap = space.heap_slot(site, "f")
        base = heap * space.instance_count
        held = {f - base for f in facts if base <= f < base + space.instance_count}
        assert site in held  # the first write survived the second

    def test_static_store_is_strong(self):
        space, transfer = compiled(
            LOCALS
            + "  L0: x := @@p.G.g\n  L1: @@p.G.g := y\n  L2: x := @@p.G.g\n  L3: return\n"
        )
        entry = set(space.entry_facts())
        after_store = transfer.out_facts(1, entry)
        g_slot = space.global_slot("p.G.g")
        base = g_slot * space.instance_count
        held = {f for f in after_store if base <= f < base + space.instance_count}
        # The symbolic entry value was strongly killed; y holds nothing,
        # so the global is now empty.
        assert not held

    def test_identity_statements(self):
        space, transfer = compiled(LOCALS + "  L0: nop\n  L1: return\n")
        facts = {1, 2, 3}
        assert transfer.out_facts(0, facts) == facts
        assert transfer.plans[0].is_identity

    def test_primitive_assignment_is_identity(self):
        space, transfer = compiled(
            LOCALS + "  local i: I\n  L0: i := i + i\n  L1: return\n"
        )
        assert transfer.plans[0].is_identity

    def test_return_fills_return_slot(self):
        app = parse_app(
            "app p\nmethod a.B.m()Ljava/lang/Object;\n"
            "  local x: Ljava/lang/Object;\n"
            "  L0: x := new a.B\n  L1: return x\nend\n"
        )
        method = app.method("a.B.m()Ljava/lang/Object;")
        space = FactSpace(method)
        transfer = TransferFunctions(space)
        out = transfer.out_facts(1, transfer.out_facts(0, set()))
        assert (("ret",), ("site", "L0", "a.B")) in named(space, out)


class TestCalls:
    CALLEE = "a.B.callee(Ljava/lang/Object;)Ljava/lang/Object;"

    def test_external_call_returns_opaque(self):
        space, transfer = compiled(
            LOCALS + f"  L0: call x := {self.CALLEE}(y)\n  L1: return\n"
        )
        out = transfer.out_facts(0, set())
        assert (("var", "x"), ("call", "L0")) in named(space, out)

    def test_summary_return_param(self):
        summary = MethodSummary(
            signature=self.CALLEE, return_params=frozenset({0})
        )
        space, transfer = compiled(
            LOCALS
            + "  L0: y := new a.B\n"
            + f"  L1: call x := {self.CALLEE}(y)\n  L2: return\n",
            summaries={self.CALLEE: summary},
        )
        facts = transfer.out_facts(1, transfer.out_facts(0, set()))
        assert (("var", "x"), ("site", "L0", "a.B")) in named(space, facts)

    def test_summary_global_write(self):
        summary = MethodSummary(
            signature=self.CALLEE,
            global_writes={"p.G.g": frozenset({("param", 0)})},
        )
        space, transfer = compiled(
            LOCALS
            + "  L0: y := new a.B\n"
            + f"  L1: call {self.CALLEE}(y)\n  L2: return\n",
            summaries={self.CALLEE: summary},
        )
        facts = transfer.out_facts(1, transfer.out_facts(0, set()))
        assert (("global", "p.G.g"), ("site", "L0", "a.B")) in named(space, facts)

    def test_summary_field_write(self):
        summary = MethodSummary(
            signature=self.CALLEE,
            field_writes={(("param", 0), "f"): frozenset({("fresh",)})},
        )
        space, transfer = compiled(
            LOCALS
            + "  L0: y := new a.B\n"
            + f"  L1: call {self.CALLEE}(y)\n"
            + "  L2: x := y.f\n  L3: return\n",
            summaries={self.CALLEE: summary},
        )
        facts = set()
        for node in range(3):
            facts = transfer.out_facts(node, facts)
        assert (("var", "x"), ("call", "L1")) in named(space, facts)

    def test_summary_return_pfield(self):
        summary = MethodSummary(
            signature=self.CALLEE, return_pfields=frozenset({(0, "f")})
        )
        space, transfer = compiled(
            LOCALS
            + "  L0: y := new a.B\n  L1: y.f := y\n"
            + f"  L2: call x := {self.CALLEE}(y)\n  L3: return\n",
            summaries={self.CALLEE: summary},
        )
        facts = set()
        for node in range(3):
            facts = transfer.out_facts(node, facts)
        # callee returned y.f, which holds the L0 site.
        assert (("var", "x"), ("site", "L0", "a.B")) in named(space, facts)

    def test_identity_summary_compiles_to_identity(self):
        callee_void = "a.B.noop()V"
        summary = MethodSummary(signature=callee_void)
        space, transfer = compiled(
            LOCALS + f"  L0: call {callee_void}()\n  L1: return\n",
            summaries={callee_void: summary},
        )
        assert transfer.plans[0].is_identity


class TestDerefDepth:
    def test_groups(self):
        space, transfer = compiled(
            LOCALS
            + "  L0: x := new a.B\n"      # const gen -> depth 0
            + "  L1: x := y\n"            # single -> depth 1
            + "  L2: x := y.f\n"          # double -> depth 2
            + "  L3: x.f := y\n"          # heap store -> depth 2
            + "  L4: nop\n"               # identity -> depth 1
            + "  L5: return\n"
        )
        assert transfer.deref_depth(0) == 0
        assert transfer.deref_depth(1) == 1
        assert transfer.deref_depth(2) == 2
        assert transfer.deref_depth(3) == 2
        assert transfer.deref_depth(4) == 1


@settings(max_examples=40, deadline=None)
@given(
    in1=st.frozensets(st.integers(min_value=0, max_value=60), max_size=12),
    extra=st.frozensets(st.integers(min_value=0, max_value=60), max_size=6),
    node=st.integers(min_value=0, max_value=4),
)
def test_transfer_is_monotone(in1, extra, node):
    """Property: IN1 <= IN2 implies OUT1 <= OUT2 for every plan.

    Monotonicity is what makes MER's postponement sound ("Fact'(4)
    inevitably is the superset of Fact(4)").
    """
    space, transfer = compiled(
        LOCALS
        + "  L0: x := new a.B\n"
        + "  L1: x := y\n"
        + "  L2: x.f := y\n"
        + "  L3: y := x.f\n"
        + "  L4: @@p.G.g := x\n"
        + "  L5: return\n"
    )
    universe = space.fact_universe
    small = {f for f in in1 if f < universe}
    big = small | {f for f in extra if f < universe}
    out_small = transfer.out_facts(node, set(small))
    out_big = transfer.out_facts(node, set(big))
    assert set(out_small) <= set(out_big)
