"""GRP classification and storage-layout tests."""

import pytest

from repro.core.grouping import (
    ACCESS_GROUP_NAMES,
    BRANCH_CLASSES,
    GROUP_DOUBLE_LAYER,
    GROUP_ONE_TIME,
    GROUP_SINGLE_LAYER,
    access_group,
    branch_class_id,
    grouped_storage_order,
)
from repro.dataflow.facts import FactSpace
from repro.dataflow.transfer import TransferFunctions
from repro.ir.parser import parse_app


def test_twenty_five_branch_classes():
    assert len(BRANCH_CLASSES) == 25
    assert len(set(BRANCH_CLASSES)) == 25


def test_three_group_names():
    assert len(ACCESS_GROUP_NAMES) == 3


def groups_for(body: str):
    app = parse_app(
        "app p\nmethod a.B.m()V\n"
        "  local x: Ljava/lang/Object;\n  local y: Ljava/lang/Object;\n"
        f"{body}end\n"
    )
    method = app.method("a.B.m()V")
    transfer = TransferFunctions(FactSpace(method))
    return [
        access_group(transfer, node) for node in range(len(method.statements))
    ], method


def test_paper_examples_classify_as_documented():
    """Section IV-B's examples: ConstClass/Null/Literal are one-time,
    VariableName/StaticFieldAccess single-layer, Access/Indexing
    double-layer."""
    groups, _ = groups_for(
        "  L0: x := null\n"
        '  L1: x := "s"\n'
        "  L2: x := constclass a.B\n"
        "  L3: x := y\n"
        "  L4: x := @@p.G.g\n"
        "  L5: x := y.f\n"
        "  L6: x := y[i]\n"
        "  L7: return\n"
    )
    assert groups[0] == groups[1] == groups[2] == GROUP_ONE_TIME
    assert groups[3] == groups[4] == GROUP_SINGLE_LAYER
    assert groups[5] == groups[6] == GROUP_DOUBLE_LAYER


def test_branch_class_ids_stable_and_in_range():
    groups, method = groups_for("  L0: x := null\n  L1: return\n")
    for statement in method.statements:
        assert 0 <= branch_class_id(statement) < 25


class TestStorageOrder:
    def test_groups_stored_contiguously(self):
        groups = [2, 0, 1, 0, 2, 1]
        position = grouped_storage_order(groups)
        # All group-0 nodes first, then group-1, then group-2; original
        # order preserved within a group.
        assert position == [4, 0, 2, 1, 5, 3]

    def test_permutation(self):
        groups = [1, 1, 0, 2, 0]
        position = grouped_storage_order(groups)
        assert sorted(position) == list(range(5))

    def test_empty(self):
        assert grouped_storage_order([]) == []
