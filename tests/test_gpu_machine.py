"""Allocator, transfer engine, kernel scheduling and device facade."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.allocator import DeviceAllocator, DeviceOutOfMemory
from repro.gpu.kernel import BlockCost, schedule_blocks
from repro.gpu.sim import GPUDevice
from repro.gpu.spec import CostTable, GPUSpec, TESLA_P40
from repro.gpu.transfer import DualBufferSchedule, TransferEngine, plan_chunks


class TestSpec:
    def test_p40_matches_paper(self):
        assert TESLA_P40.sm_count == 30
        assert TESLA_P40.cores_per_sm == 128
        assert TESLA_P40.shared_memory_per_sm_bytes == 48 * 1024
        assert TESLA_P40.global_memory_bytes == 24 * 1024**3
        assert TESLA_P40.warp_size == 32

    def test_cycle_second_round_trip(self):
        cycles = 1.5e9
        assert TESLA_P40.seconds_to_cycles(
            TESLA_P40.cycles_to_seconds(cycles)
        ) == pytest.approx(cycles)

    def test_cost_orderings(self):
        """The mechanistic orderings the model depends on."""
        costs = CostTable()
        # A dynamic allocation dwarfs every per-fact operation.
        assert costs.dynamic_alloc_cycles > 100 * costs.set_insert_cycles
        # Matrix lookups are cheaper than set operations.
        assert costs.mat_lookup_cycles < costs.set_insert_cycles
        assert costs.mat_lookup_cycles < costs.set_scan_cycles_per_entry * 3

    def test_scaled_override(self):
        costs = CostTable().scaled(dynamic_alloc_cycles=1.0)
        assert costs.dynamic_alloc_cycles == 1.0


class TestAllocator:
    def test_reserve_and_release(self):
        allocator = DeviceAllocator()
        allocator.reserve(1024)
        assert allocator.stats.bytes_in_use == 1024
        allocator.release(1024)
        assert allocator.stats.bytes_in_use == 0
        assert allocator.stats.high_water_bytes == 1024

    def test_out_of_memory(self):
        allocator = DeviceAllocator()
        with pytest.raises(DeviceOutOfMemory):
            allocator.reserve(TESLA_P40.global_memory_bytes + 1)

    def test_realloc_burst_serializes(self):
        allocator = DeviceAllocator()
        stall = allocator.dynamic_realloc_burst(5)
        assert stall == 5 * allocator.costs.dynamic_alloc_cycles
        assert allocator.stats.dynamic_allocs == 5

    def test_zero_burst_free(self):
        allocator = DeviceAllocator()
        assert allocator.dynamic_realloc_burst(0) == 0.0


class TestDualBuffering:
    def test_pipelined_hides_transfers(self):
        schedule = DualBufferSchedule(chunks=((10, 100), (20, 100), (30, 50)))
        assert schedule.serial_cycles == 310
        # t0 + max(k0,t1) + max(k1,t2) + k2 = 10+100+100+50
        assert schedule.pipelined_cycles == 260
        assert schedule.hidden_cycles == 50

    def test_transfer_bound_pipeline(self):
        # Transfers dominate: kernel time hides inside copies.
        schedule = DualBufferSchedule(chunks=((100, 10), (100, 10)))
        assert schedule.pipelined_cycles == 100 + 100 + 10

    def test_empty(self):
        schedule = DualBufferSchedule(chunks=())
        assert schedule.pipelined_cycles == 0.0

    def test_plan_chunks_splits_by_buffer(self):
        engine = TransferEngine()
        schedule = plan_chunks(1000, 500.0, 300, engine)
        assert len(schedule.chunks) == 4  # 300+300+300+100
        assert engine.bytes_moved == 1000

    @settings(max_examples=50, deadline=None)
    @given(
        chunks=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e6),
                st.floats(min_value=0, max_value=1e6),
            ),
            max_size=12,
        )
    )
    def test_pipeline_bounds(self, chunks):
        """Property: pipelining never loses, never beats the two LBs."""
        schedule = DualBufferSchedule(chunks=tuple(chunks))
        pipelined = schedule.pipelined_cycles
        assert pipelined <= schedule.serial_cycles + 1e-6
        total_kernel = sum(k for _, k in chunks)
        first_transfer = chunks[0][0] if chunks else 0.0
        assert pipelined >= total_kernel + first_transfer - 1e-6


class TestKernelScheduling:
    def blocks(self, cycles):
        return [
            BlockCost(block_id=i, cycles=c, iterations=1, node_visits=1)
            for i, c in enumerate(cycles)
        ]

    def test_fewer_blocks_than_slots(self):
        kernel = schedule_blocks(self.blocks([100, 200, 50]))
        assert kernel.makespan_cycles == 200

    def test_makespan_lower_bounds(self):
        cycles = [float(i % 7 + 1) * 100 for i in range(500)]
        kernel = schedule_blocks(self.blocks(cycles), blocks_per_sm=4)
        slots = 30 * 4
        assert kernel.makespan_cycles >= max(cycles)
        assert kernel.makespan_cycles >= sum(cycles) / slots
        # LPT is within 4/3 of the trivial lower bound.
        assert kernel.makespan_cycles <= max(
            max(cycles), sum(cycles) / slots
        ) * (4 / 3) + max(cycles)

    def test_launch_overhead_charged(self):
        kernel = schedule_blocks(self.blocks([10]))
        assert kernel.total_cycles == kernel.makespan_cycles + kernel.launch_cycles

    def test_breakdown_sums_components(self):
        block = BlockCost(
            block_id=0, cycles=10, iterations=1, node_visits=1,
            compute_cycles=4, memory_cycles=6,
        )
        kernel = schedule_blocks([block])
        breakdown = kernel.breakdown()
        assert breakdown["compute_cycles"] == 4
        assert breakdown["memory_cycles"] == 6


class TestDevice:
    def test_launch_accumulates(self):
        device = GPUDevice()
        device.launch(
            [BlockCost(block_id=0, cycles=100, iterations=1, node_visits=1)],
            blocks_per_sm=4,
        )
        assert device.stats.kernels_launched == 1
        assert device.stats.kernel_cycles > 0
        assert device.elapsed_seconds() > 0

    def test_staging_charges_exposed_transfer(self):
        device = GPUDevice()
        schedule = device.stage_input(10 * 1024**3, kernel_cycles_estimate=1.0)
        # 10 GB image, negligible kernel: nearly everything exposed.
        assert device.stats.transfer_cycles > 0
        assert schedule.chunks
