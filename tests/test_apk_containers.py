"""Binary container, loader, corpus and manifest tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apk.corpus import AppCorpus, CORPUS_BASE_SEED
from repro.apk.dex import GdxFormatError, MAGIC, pack_app, unpack_app
from repro.apk.generator import GeneratorProfile
from repro.apk.loader import load_directory, load_gdx, save_corpus, save_gdx
from repro.apk.manifest import AndroidManifest, manifest_of
from repro.ir.printer import print_app
from tests.conftest import TINY_PROFILE, tiny_app


class TestDexContainer:
    def test_round_trip(self, demo_app):
        assert print_app(unpack_app(pack_app(demo_app))) == print_app(demo_app)

    def test_magic_checked(self):
        with pytest.raises(GdxFormatError, match="magic"):
            unpack_app(b"NOPE" + b"\x00" * 32)

    def test_version_checked(self, demo_app):
        blob = bytearray(pack_app(demo_app))
        blob[4:6] = (99).to_bytes(2, "little")
        with pytest.raises(GdxFormatError, match="version"):
            unpack_app(bytes(blob))

    def test_truncation_detected(self, demo_app):
        blob = pack_app(demo_app)
        with pytest.raises(GdxFormatError, match="truncated"):
            unpack_app(blob[: len(blob) // 2])

    def test_magic_constant(self):
        assert MAGIC == b"GDX1"

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_generated_apps_round_trip(self, seed):
        app = tiny_app(seed)
        assert print_app(unpack_app(pack_app(app))) == print_app(app)


class TestLoader:
    def test_save_load_file(self, tmp_path, demo_app):
        path = tmp_path / "demo.gdx"
        size = save_gdx(demo_app, path)
        assert path.stat().st_size == size
        assert print_app(load_gdx(path)) == print_app(demo_app)

    def test_save_corpus_and_directory_scan(self, tmp_path):
        apps = [tiny_app(seed) for seed in range(3)]
        written = save_corpus(apps, tmp_path / "corpus")
        assert len(written) == 3
        loaded = list(load_directory(tmp_path / "corpus"))
        assert [a.package for a in loaded] == [a.package for a in apps]


class TestCorpus:
    def test_lazy_and_reproducible(self):
        corpus = AppCorpus(size=5, profile=TINY_PROFILE)
        assert print_app(corpus.app(3)) == print_app(corpus.app(3))
        assert len(corpus) == 5

    def test_index_bounds(self):
        corpus = AppCorpus(size=2, profile=TINY_PROFILE)
        with pytest.raises(IndexError):
            corpus.app(2)

    def test_iteration(self):
        corpus = AppCorpus(size=3, profile=TINY_PROFILE)
        assert len(list(corpus)) == 3

    def test_stats(self):
        corpus = AppCorpus(size=4, profile=TINY_PROFILE)
        stats = corpus.stats()
        assert stats.apps == 4
        assert stats.mean_methods > 0
        assert sum(stats.categories.values()) == 4
        table = stats.as_table1()
        assert set(table) == {
            "no. of CFG Nodes", "no. of Methods", "no. of Variable"
        }

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_APPS", "7")
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        corpus = AppCorpus.from_env()
        assert corpus.size == 7
        assert corpus.profile.scale == 0.5
        assert corpus.base_seed == CORPUS_BASE_SEED

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            AppCorpus(size=0)


class TestManifest:
    def test_manifest_of(self, demo_app):
        manifest = manifest_of(demo_app, permissions=["android.permission.INTERNET"])
        assert manifest.package == "com.demo"
        assert manifest.components[0].kind == "activity"
        assert manifest.permissions == ("android.permission.INTERNET",)

    def test_json_round_trip(self, demo_app):
        manifest = manifest_of(demo_app)
        assert AndroidManifest.from_json(manifest.to_json()) == manifest

    def test_exported_components(self, demo_app):
        manifest = manifest_of(demo_app)
        assert manifest.exported_components()
