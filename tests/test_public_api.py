"""Public-API surface tests: the documented imports all resolve."""

import importlib

import pytest


class TestTopLevel:
    def test_lazy_exports_resolve(self):
        import repro

        for name in repro.__all__:
            if name == "__version__":
                continue
            assert getattr(repro, name) is not None

    def test_unknown_attribute_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.definitely_not_a_symbol

    def test_version(self):
        import repro

        assert repro.__version__ == "1.6.0"


PACKAGES = [
    "repro.ir",
    "repro.apk",
    "repro.cfg",
    "repro.dataflow",
    "repro.gpu",
    "repro.core",
    "repro.cpu",
    "repro.vetting",
    "repro.bench",
    "repro.serve",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_package_all_is_accurate(package):
    """Every name in __all__ exists and is importable."""
    module = importlib.import_module(package)
    assert module.__all__, f"{package} should export a public surface"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_package_has_docstring(package):
    module = importlib.import_module(package)
    assert module.__doc__ and len(module.__doc__) > 80


def test_readme_quickstart_runs():
    """The README's quickstart snippet must actually work."""
    from repro import GDroid, GDroidConfig, generate_app
    from repro.apk.generator import GeneratorProfile
    from repro.core.engine import AppWorkload

    app = generate_app(7, GeneratorProfile(scale=0.05))
    workload = AppWorkload.build(app)
    plain = GDroid(GDroidConfig.plain()).price(workload)
    full = GDroid(GDroidConfig.all_optimizations()).price(workload)
    assert plain.modeled_time_s > full.modeled_time_s
    assert workload.idfg.total_fact_count() > 0
