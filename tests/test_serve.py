"""Vetting-service tests: queue, sharding, faults, retries, soak.

The centrepiece is the soak acceptance test: 100 generated apps pushed
through the service under worker-crash + OOM injection must finish
with zero lost or duplicated jobs, rows bit-identical to a direct
``evaluate_corpus`` sweep, and every retry/fallback visible as obs
counters in the exported run ledger.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import obs
from repro.apk.corpus import AppCorpus
from repro.apk.generator import GeneratorProfile
from repro.bench.harness import AppEvaluation, evaluate_corpus
from repro.serve import (
    AdmissionError,
    AdmissionQueue,
    FaultConfig,
    FaultInjector,
    JobState,
    ServeConfig,
    Sharder,
    VetJob,
    build_injector,
    classify,
    make_batches,
    parse_inject,
    run_soak,
    submit_paths,
)
from repro.serve.service import CorpusSource, VettingService
from repro.serve.workers import (
    ENGINE_CPU,
    ENGINE_GDROID,
    ENGINE_LADDER,
    ENGINE_PLAIN,
    engine_latency_s,
)

#: Small, fast corpus profile shared by the service tests.
SERVE_PROFILE = GeneratorProfile(scale=0.06)


def _job(index: int, cost: float = 100.0, size_class: str = "small") -> VetJob:
    return VetJob(
        job_id=f"job-{index:04d}",
        index=index,
        package=f"com.test.app{index}",
        source="corpus",
        est_cost=cost,
        size_class=size_class,
    )


# -- admission queue -----------------------------------------------------------


class TestAdmissionQueue:
    def test_try_submit_rejects_when_full(self):
        queue = AdmissionQueue(capacity=2)
        queue.try_submit("a")
        queue.try_submit("b")
        with pytest.raises(AdmissionError):
            queue.try_submit("c")
        assert queue.admitted == 2
        assert queue.rejected == 1
        assert queue.high_water == 2

    def test_submit_applies_backpressure(self):
        async def scenario():
            queue = AdmissionQueue(capacity=1)
            await queue.submit("a")
            waiter = asyncio.ensure_future(queue.submit("b"))
            await asyncio.sleep(0)
            assert not waiter.done()  # blocked on the full window
            assert await queue.get() == "a"
            await waiter  # slot freed -> admitted
            assert queue.admitted == 2

        asyncio.run(scenario())

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=0)


# -- sharding ------------------------------------------------------------------


class TestSharder:
    def test_size_classes(self):
        assert classify(500) == "small"
        assert classify(6217) == "medium"
        assert classify(20000) == "large"

    def test_small_jobs_coalesce_and_big_jobs_ship_alone(self):
        jobs = [
            _job(0), _job(1),
            _job(2, cost=9000, size_class="medium"),
            _job(3), _job(4), _job(5), _job(6), _job(7),
        ]
        batches = make_batches(jobs, small_batch_max=4)
        sizes = [len(batch) for batch in batches]
        # [0,1] flushed by the medium job, [2] alone, then [3..6], [7].
        assert sizes == [2, 1, 4, 1]
        assert all(
            job.size_class == "small"
            for batch in batches
            for job in batch.jobs
            if len(batch) > 1
        )

    def test_lpt_balances_against_existing_load(self):
        jobs = [_job(i, cost=100.0) for i in range(4)]
        batches = make_batches(jobs, small_batch_max=1)
        sharder = Sharder(workers=2)
        # Worker 0 is already heavily loaded: everything goes to 1.
        placement = sharder.assign(batches, loads=[1e9, 0.0])
        assert [len(b) for b in placement[0]] == []
        assert len(placement[1]) == 4

    def test_assignment_is_deterministic(self):
        jobs = [_job(i, cost=50.0 * (i + 1)) for i in range(7)]
        batches = make_batches(jobs, small_batch_max=2)
        sharder = Sharder(workers=3)
        first = sharder.assign(batches, loads=[0.0] * 3)
        second = sharder.assign(batches, loads=[0.0] * 3)
        ids = lambda placement: [  # noqa: E731
            [batch.batch_id for batch in worker] for worker in placement
        ]
        assert ids(first) == ids(second)


# -- fault injection -----------------------------------------------------------


class TestFaultInjection:
    def test_parse_inject(self):
        assert parse_inject("worker-crash,oom") == {"worker-crash", "oom"}
        assert parse_inject("") == frozenset()
        with pytest.raises(ValueError):
            parse_inject("worker-crash,frobnicate")

    def test_schedule_is_deterministic(self):
        a = build_injector({"worker-crash", "oom"}, 11, jobs=40, workers=4)
        b = build_injector({"worker-crash", "oom"}, 11, jobs=40, workers=4)
        for worker in range(4):
            for started in range(1, 12):
                assert a.should_crash(worker, started) == b.should_crash(
                    worker, started
                )
                assert a.should_oom(worker, started) == b.should_oom(
                    worker, started
                )

    def test_disabled_kinds_never_fire(self):
        injector = FaultInjector(
            FaultConfig(kinds=frozenset({"oom"})), jobs=20, workers=2
        )
        assert not any(
            injector.should_crash(w, n)
            for w in range(2)
            for n in range(1, 20)
        )
        assert any(
            injector.should_oom(w, n) for w in range(2) for n in range(1, 20)
        )
        assert not injector.is_corrupt(0)
        assert injector.stall_seconds(0) == 0.0

    def test_every_enabled_worker_kind_fires_within_horizon(self):
        injector = build_injector(
            {"worker-crash"}, 5, jobs=12, workers=3
        )
        for worker in range(3):
            assert any(
                injector.should_crash(worker, started)
                for started in range(1, 6)
            )


# -- engine ladder -------------------------------------------------------------


class TestEngineLadder:
    def test_ladder_order(self):
        assert ENGINE_LADDER == (ENGINE_GDROID, ENGINE_PLAIN, ENGINE_CPU)

    def test_latency_picks_the_engine_column(self, demo_app):
        from repro.bench.harness import evaluate_app

        row = evaluate_app(demo_app)
        assert engine_latency_s(row, ENGINE_GDROID) == row.full_s
        assert engine_latency_s(row, ENGINE_PLAIN) == row.plain_s
        assert engine_latency_s(row, ENGINE_CPU) == row.cpu_s


# -- service behaviour ---------------------------------------------------------


class TestService:
    def test_clean_run_completes_everything(self):
        corpus = AppCorpus(size=6, base_seed=910100, profile=SERVE_PROFILE)
        report = run_soak(corpus, config=ServeConfig(workers=2))
        assert report.ok
        assert report.completed == 6 and report.failed == 0
        assert all(job.attempts == 1 for job in report.jobs)
        assert all(job.engine == ENGINE_GDROID for job in report.jobs)
        assert all(job.verdict is not None for job in report.jobs)
        assert report.counters["serve.submitted"] == 6
        assert report.counters["serve.completed"] == 6

    def test_worker_crash_retries_without_loss(self):
        corpus = AppCorpus(size=10, base_seed=910200, profile=SERVE_PROFILE)
        report = run_soak(
            corpus,
            config=ServeConfig(workers=3),
            inject=frozenset({"worker-crash"}),
        )
        assert report.ok and report.failed == 0
        assert report.counters["serve.worker_crashes"] >= 1
        assert report.counters["serve.retries"] >= 1
        retried = [job for job in report.jobs if "worker-crash" in job.faults]
        assert retried, "the crash must have hit at least one job"
        for job in retried:
            assert job.state == JobState.DONE
            assert job.backoffs_s, "retries must sleep a backoff"

    def test_oom_degrades_down_the_ladder(self):
        corpus = AppCorpus(size=10, base_seed=910300, profile=SERVE_PROFILE)
        report = run_soak(
            corpus,
            config=ServeConfig(workers=2),
            inject=frozenset({"oom"}),
            ooms_per_worker=2,
        )
        assert report.ok and report.failed == 0
        assert report.counters["serve.oom_events"] >= 1
        assert report.counters["serve.degraded"] >= 1
        fallback = [
            job for job in report.jobs if job.engine != ENGINE_GDROID
        ]
        assert fallback, "some jobs must have been served degraded"
        for job in fallback:
            assert job.engine in (ENGINE_PLAIN, ENGINE_CPU)
            assert job.modeled_latency_s is not None

    def test_degraded_rows_stay_bit_identical(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        corpus = AppCorpus(size=5, base_seed=910400, profile=SERVE_PROFILE)
        report = run_soak(
            corpus,
            config=ServeConfig(workers=2),
            inject=frozenset({"oom", "worker-crash"}),
        )
        assert report.ok
        direct = evaluate_corpus(corpus)
        for index, row in report.rows().items():
            assert row == direct[index]

    def test_corrupt_apk_fails_structurally_without_retry(self):
        corpus = AppCorpus(size=8, base_seed=910500, profile=SERVE_PROFILE)
        report = run_soak(
            corpus,
            config=ServeConfig(workers=2),
            inject=frozenset({"corrupt-apk"}),
            corrupt_fraction=0.4,
        )
        assert report.ok
        corrupt = [job for job in report.jobs if job.state == JobState.FAILED]
        assert corrupt, "the corruption campaign must hit something"
        assert report.counters["serve.corrupt_apks"] == len(corrupt)
        for job in corrupt:
            assert job.faults == ["corrupt-apk"]
            assert job.attempts == 1  # deterministic fault: no retry burn
            assert "corrupt apk" in job.error
        clean = [job for job in report.jobs if job.state == JobState.DONE]
        assert len(clean) + len(corrupt) == 8

    def test_stall_trips_timeout_and_is_retried(self):
        corpus = AppCorpus(size=4, base_seed=910600, profile=SERVE_PROFILE)
        report = run_soak(
            corpus,
            config=ServeConfig(
                workers=2, timeout_s=0.05, max_attempts=2
            ),
            inject=frozenset({"stall"}),
            stall_fraction=0.5,
            stall_s=0.5,
        )
        assert report.ok
        assert report.counters["serve.timeouts"] >= 1
        stalled = [job for job in report.jobs if "timeout" in job.faults]
        assert stalled
        # A stall is deterministic per app index, so retries stall too
        # and the job eventually exhausts its attempts.
        for job in stalled:
            assert job.state == JobState.FAILED
            assert "retries exhausted" in job.error

    def test_retries_exhaust_into_failure(self):
        corpus = AppCorpus(size=4, base_seed=910700, profile=SERVE_PROFILE)
        report = run_soak(
            corpus,
            config=ServeConfig(workers=1, max_attempts=2),
            inject=frozenset({"worker-crash"}),
            crashes_per_worker=6,
        )
        assert report.ok  # exhausted jobs FAIL, they are never lost
        assert report.failed + report.completed == 4

    def test_strict_mode_reuses_lint_gate(self):
        corpus = AppCorpus(size=4, base_seed=910800, profile=SERVE_PROFILE)
        report = run_soak(
            corpus, config=ServeConfig(workers=2, strict=True)
        )
        assert report.ok
        # The seeded corpus lints clean, so all rows are evaluations.
        assert all(
            isinstance(job.row, AppEvaluation) for job in report.jobs
        )

    def test_backoff_is_exponential_capped_and_jittered(self):
        corpus = AppCorpus(size=1, base_seed=910900, profile=SERVE_PROFILE)
        service = VettingService(
            CorpusSource(corpus),
            config=ServeConfig(
                backoff_base_s=0.01, backoff_cap_s=0.05, backoff_jitter=0.5
            ),
        )
        delays = [service.backoff_s("job-0000", a) for a in range(1, 7)]
        # Deterministic for a given (seed, job, attempt) ...
        assert delays == [
            service.backoff_s("job-0000", a) for a in range(1, 7)
        ]
        # ... exponential-ish within the jitter band, capped at the top.
        for attempt, delay in enumerate(delays, start=1):
            raw = min(0.05, 0.01 * 2 ** (attempt - 1))
            assert raw / 2 <= delay <= raw
        assert max(delays) <= 0.05
        # Jitter decorrelates jobs.
        assert service.backoff_s("job-0001", 1) != delays[0]


# -- path submissions ----------------------------------------------------------


class TestSubmitPaths:
    def test_mixed_good_and_corrupt_files(self, tmp_path):
        from repro.apk.loader import save_gdx
        from tests.conftest import tiny_app

        good = tmp_path / "good.gdx"
        save_gdx(tiny_app(3), good)
        bad = tmp_path / "bad.gdx"
        bad.write_bytes(b"not a gdx container")
        report = submit_paths([str(good), str(bad)])
        assert report.ok
        by_source = {job.source: job for job in report.jobs}
        assert by_source[str(good)].state == JobState.DONE
        assert by_source[str(good)].verdict is not None
        assert by_source[str(bad)].state == JobState.FAILED
        assert "corrupt apk" in by_source[str(bad)].error

    def test_missing_file_fails_the_job_not_the_service(self, tmp_path):
        report = submit_paths([str(tmp_path / "nope.gdx")])
        assert report.ok
        assert report.jobs[0].state == JobState.FAILED


# -- the soak acceptance test --------------------------------------------------


class TestSoakAcceptance:
    def test_hundred_app_soak_with_crash_and_oom(
        self, tmp_path, monkeypatch
    ):
        """ISSUE 5 acceptance: 100 apps, crash+OOM, zero loss, identical
        rows, retries/fallbacks visible in the exported run ledger."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        profile = GeneratorProfile(scale=0.04)
        corpus = AppCorpus(size=100, base_seed=911000, profile=profile)
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            report = run_soak(
                corpus,
                config=ServeConfig(workers=4, queue_capacity=16, vet=False),
                inject=frozenset({"worker-crash", "oom"}),
            )
        # Zero lost or duplicated jobs.
        assert report.submitted == 100
        assert report.lost == 0
        assert report.duplicates == 0
        assert report.completed == 100 and report.failed == 0
        # Faults actually fired and were survived.
        assert report.counters["serve.worker_crashes"] >= 1
        assert report.counters["serve.oom_events"] >= 1
        assert report.counters["serve.retries"] >= 1
        assert any(
            name.startswith("serve.fallback.") for name in report.counters
        )
        # Backpressure engaged: the window is far smaller than the run.
        assert report.counters["serve.queue_high_water"] <= 16

        # Results bit-identical to a direct evaluate_corpus sweep.
        direct = evaluate_corpus(corpus)
        rows = report.rows()
        assert len(rows) == 100
        for index in range(100):
            assert rows[index] == direct[index]

        # Every retry/fallback visible in the exported run ledger.
        from repro.obs.export import run_ledger

        ledger = run_ledger(tracer)
        counters = ledger["counters"]
        for name in (
            "serve.submitted",
            "serve.retries",
            "serve.worker_crashes",
            "serve.oom_events",
            "serve.degraded",
        ):
            assert counters[name] == report.counters[name], name
        assert any(
            span["category"] == "serve" for span in ledger["spans"]
        )

    def test_soak_report_round_trips_to_json(self):
        corpus = AppCorpus(size=3, base_seed=911100, profile=SERVE_PROFILE)
        report = run_soak(corpus, config=ServeConfig(workers=2))
        payload = json.loads(json.dumps(report.to_json(), sort_keys=True))
        assert payload["ok"] is True
        assert len(payload["jobs"]) == 3
        assert payload["jobs"][0]["state"] == "done"
