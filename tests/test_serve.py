"""Vetting-service tests: queue, sharding, faults, retries, soak.

The centrepiece is the soak acceptance test: 100 generated apps pushed
through the service under worker-crash + OOM injection must finish
with zero lost or duplicated jobs, rows bit-identical to a direct
``evaluate_corpus`` sweep, and every retry/fallback visible as obs
counters in the exported run ledger.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import obs
from repro.apk.corpus import AppCorpus
from repro.apk.generator import GeneratorProfile
from repro.bench.harness import AppEvaluation, evaluate_corpus
from repro.serve import (
    AdmissionError,
    AdmissionQueue,
    FaultConfig,
    FaultInjector,
    JobState,
    ServeConfig,
    Sharder,
    VetJob,
    build_injector,
    classify,
    make_batches,
    parse_inject,
    run_soak,
    submit_paths,
)
from repro.serve.service import CorpusSource, VettingService
from repro.serve.workers import (
    ENGINE_CPU,
    ENGINE_GDROID,
    ENGINE_LADDER,
    ENGINE_PLAIN,
    engine_latency_s,
)

#: Small, fast corpus profile shared by the service tests.
SERVE_PROFILE = GeneratorProfile(scale=0.06)


def _job(index: int, cost: float = 100.0, size_class: str = "small") -> VetJob:
    return VetJob(
        job_id=f"job-{index:04d}",
        index=index,
        package=f"com.test.app{index}",
        source="corpus",
        est_cost=cost,
        size_class=size_class,
    )


# -- admission queue -----------------------------------------------------------


class TestAdmissionQueue:
    def test_try_submit_rejects_when_full(self):
        queue = AdmissionQueue(capacity=2)
        queue.try_submit("a")
        queue.try_submit("b")
        with pytest.raises(AdmissionError):
            queue.try_submit("c")
        assert queue.admitted == 2
        assert queue.rejected == 1
        assert queue.high_water == 2

    def test_submit_applies_backpressure(self):
        async def scenario():
            queue = AdmissionQueue(capacity=1)
            await queue.submit("a")
            waiter = asyncio.ensure_future(queue.submit("b"))
            await asyncio.sleep(0)
            assert not waiter.done()  # blocked on the full window
            assert await queue.get() == "a"
            await waiter  # slot freed -> admitted
            assert queue.admitted == 2

        asyncio.run(scenario())

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=0)


# -- sharding ------------------------------------------------------------------


class TestSharder:
    def test_size_classes(self):
        assert classify(500) == "small"
        assert classify(6217) == "medium"
        assert classify(20000) == "large"

    def test_small_jobs_coalesce_and_big_jobs_ship_alone(self):
        jobs = [
            _job(0), _job(1),
            _job(2, cost=9000, size_class="medium"),
            _job(3), _job(4), _job(5), _job(6), _job(7),
        ]
        batches = make_batches(jobs, small_batch_max=4)
        sizes = [len(batch) for batch in batches]
        # [0,1] flushed by the medium job, [2] alone, then [3..6], [7].
        assert sizes == [2, 1, 4, 1]
        assert all(
            job.size_class == "small"
            for batch in batches
            for job in batch.jobs
            if len(batch) > 1
        )

    def test_lpt_balances_against_existing_load(self):
        jobs = [_job(i, cost=100.0) for i in range(4)]
        batches = make_batches(jobs, small_batch_max=1)
        sharder = Sharder(workers=2)
        # Worker 0 is already heavily loaded: everything goes to 1.
        placement = sharder.assign(batches, loads=[1e9, 0.0])
        assert [len(b) for b in placement[0]] == []
        assert len(placement[1]) == 4

    def test_assignment_is_deterministic(self):
        jobs = [_job(i, cost=50.0 * (i + 1)) for i in range(7)]
        batches = make_batches(jobs, small_batch_max=2)
        sharder = Sharder(workers=3)
        first = sharder.assign(batches, loads=[0.0] * 3)
        second = sharder.assign(batches, loads=[0.0] * 3)
        ids = lambda placement: [  # noqa: E731
            [batch.batch_id for batch in worker] for worker in placement
        ]
        assert ids(first) == ids(second)


# -- fault injection -----------------------------------------------------------


class TestFaultInjection:
    def test_parse_inject(self):
        assert parse_inject("worker-crash,oom") == {"worker-crash", "oom"}
        assert parse_inject("") == frozenset()
        with pytest.raises(ValueError):
            parse_inject("worker-crash,frobnicate")

    def test_schedule_is_deterministic(self):
        a = build_injector({"worker-crash", "oom"}, 11, jobs=40, workers=4)
        b = build_injector({"worker-crash", "oom"}, 11, jobs=40, workers=4)
        for worker in range(4):
            for started in range(1, 12):
                assert a.should_crash(worker, started) == b.should_crash(
                    worker, started
                )
                assert a.should_oom(worker, started) == b.should_oom(
                    worker, started
                )

    def test_disabled_kinds_never_fire(self):
        injector = FaultInjector(
            FaultConfig(kinds=frozenset({"oom"})), jobs=20, workers=2
        )
        assert not any(
            injector.should_crash(w, n)
            for w in range(2)
            for n in range(1, 20)
        )
        assert any(
            injector.should_oom(w, n) for w in range(2) for n in range(1, 20)
        )
        assert not injector.is_corrupt(0)
        assert injector.stall_seconds(0) == 0.0

    def test_every_enabled_worker_kind_fires_within_horizon(self):
        injector = build_injector(
            {"worker-crash"}, 5, jobs=12, workers=3
        )
        for worker in range(3):
            assert any(
                injector.should_crash(worker, started)
                for started in range(1, 6)
            )


# -- engine ladder -------------------------------------------------------------


class TestEngineLadder:
    def test_ladder_order(self):
        assert ENGINE_LADDER == (ENGINE_GDROID, ENGINE_PLAIN, ENGINE_CPU)

    def test_latency_picks_the_engine_column(self, demo_app):
        from repro.bench.harness import evaluate_app

        row = evaluate_app(demo_app)
        assert engine_latency_s(row, ENGINE_GDROID) == row.full_s
        assert engine_latency_s(row, ENGINE_PLAIN) == row.plain_s
        assert engine_latency_s(row, ENGINE_CPU) == row.cpu_s


# -- service behaviour ---------------------------------------------------------


class TestService:
    def test_clean_run_completes_everything(self):
        corpus = AppCorpus(size=6, base_seed=910100, profile=SERVE_PROFILE)
        report = run_soak(corpus, config=ServeConfig(workers=2))
        assert report.ok
        assert report.completed == 6 and report.failed == 0
        assert all(job.attempts == 1 for job in report.jobs)
        assert all(job.engine == ENGINE_GDROID for job in report.jobs)
        assert all(job.verdict is not None for job in report.jobs)
        assert report.counters["serve.submitted"] == 6
        assert report.counters["serve.completed"] == 6

    def test_worker_crash_retries_without_loss(self):
        corpus = AppCorpus(size=10, base_seed=910200, profile=SERVE_PROFILE)
        report = run_soak(
            corpus,
            config=ServeConfig(workers=3),
            inject=frozenset({"worker-crash"}),
        )
        assert report.ok and report.failed == 0
        assert report.counters["serve.worker_crashes"] >= 1
        assert report.counters["serve.retries"] >= 1
        retried = [job for job in report.jobs if "worker-crash" in job.faults]
        assert retried, "the crash must have hit at least one job"
        for job in retried:
            assert job.state == JobState.DONE
            assert job.backoffs_s, "retries must sleep a backoff"

    def test_oom_degrades_down_the_ladder(self):
        corpus = AppCorpus(size=10, base_seed=910300, profile=SERVE_PROFILE)
        report = run_soak(
            corpus,
            config=ServeConfig(workers=2),
            inject=frozenset({"oom"}),
            ooms_per_worker=2,
        )
        assert report.ok and report.failed == 0
        assert report.counters["serve.oom_events"] >= 1
        assert report.counters["serve.degraded"] >= 1
        fallback = [
            job for job in report.jobs if job.engine != ENGINE_GDROID
        ]
        assert fallback, "some jobs must have been served degraded"
        for job in fallback:
            assert job.engine in (ENGINE_PLAIN, ENGINE_CPU)
            assert job.modeled_latency_s is not None

    def test_degraded_rows_stay_bit_identical(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        corpus = AppCorpus(size=5, base_seed=910400, profile=SERVE_PROFILE)
        report = run_soak(
            corpus,
            config=ServeConfig(workers=2),
            inject=frozenset({"oom", "worker-crash"}),
        )
        assert report.ok
        direct = evaluate_corpus(corpus)
        for index, row in report.rows().items():
            assert row == direct[index]

    def test_corrupt_apk_fails_structurally_without_retry(self):
        corpus = AppCorpus(size=8, base_seed=910500, profile=SERVE_PROFILE)
        report = run_soak(
            corpus,
            config=ServeConfig(workers=2),
            inject=frozenset({"corrupt-apk"}),
            corrupt_fraction=0.4,
        )
        assert report.ok
        corrupt = [job for job in report.jobs if job.state == JobState.FAILED]
        assert corrupt, "the corruption campaign must hit something"
        assert report.counters["serve.corrupt_apks"] == len(corrupt)
        for job in corrupt:
            assert job.faults == ["corrupt-apk"]
            assert job.attempts == 1  # deterministic fault: no retry burn
            assert "corrupt apk" in job.error
        clean = [job for job in report.jobs if job.state == JobState.DONE]
        assert len(clean) + len(corrupt) == 8

    def test_stall_trips_timeout_and_is_retried(self):
        corpus = AppCorpus(size=4, base_seed=910600, profile=SERVE_PROFILE)
        report = run_soak(
            corpus,
            config=ServeConfig(
                workers=2, timeout_s=0.05, max_attempts=2
            ),
            inject=frozenset({"stall"}),
            stall_fraction=0.5,
            stall_s=0.5,
        )
        assert report.ok
        assert report.counters["serve.timeouts"] >= 1
        stalled = [job for job in report.jobs if "timeout" in job.faults]
        assert stalled
        # A stall is deterministic per app index, so retries stall too
        # and the job eventually exhausts its attempts.
        for job in stalled:
            assert job.state == JobState.FAILED
            assert "retries exhausted" in job.error

    def test_retries_exhaust_into_failure(self):
        corpus = AppCorpus(size=4, base_seed=910700, profile=SERVE_PROFILE)
        report = run_soak(
            corpus,
            config=ServeConfig(workers=1, max_attempts=2),
            inject=frozenset({"worker-crash"}),
            crashes_per_worker=6,
        )
        assert report.ok  # exhausted jobs FAIL, they are never lost
        assert report.failed + report.completed == 4

    def test_strict_mode_reuses_lint_gate(self):
        corpus = AppCorpus(size=4, base_seed=910800, profile=SERVE_PROFILE)
        report = run_soak(
            corpus, config=ServeConfig(workers=2, strict=True)
        )
        assert report.ok
        # The seeded corpus lints clean, so all rows are evaluations.
        assert all(
            isinstance(job.row, AppEvaluation) for job in report.jobs
        )

    def test_backoff_is_exponential_capped_and_jittered(self):
        corpus = AppCorpus(size=1, base_seed=910900, profile=SERVE_PROFILE)
        service = VettingService(
            CorpusSource(corpus),
            config=ServeConfig(
                backoff_base_s=0.01, backoff_cap_s=0.05, backoff_jitter=0.5
            ),
        )
        delays = [service.backoff_s("job-0000", a) for a in range(1, 7)]
        # Deterministic for a given (seed, job, attempt) ...
        assert delays == [
            service.backoff_s("job-0000", a) for a in range(1, 7)
        ]
        # ... exponential-ish within the jitter band, capped at the top.
        for attempt, delay in enumerate(delays, start=1):
            raw = min(0.05, 0.01 * 2 ** (attempt - 1))
            assert raw / 2 <= delay <= raw
        assert max(delays) <= 0.05
        # Jitter decorrelates jobs.
        assert service.backoff_s("job-0001", 1) != delays[0]


# -- path submissions ----------------------------------------------------------


class TestSubmitPaths:
    def test_mixed_good_and_corrupt_files(self, tmp_path):
        from repro.apk.loader import save_gdx
        from tests.conftest import tiny_app

        good = tmp_path / "good.gdx"
        save_gdx(tiny_app(3), good)
        bad = tmp_path / "bad.gdx"
        bad.write_bytes(b"not a gdx container")
        report = submit_paths([str(good), str(bad)])
        assert report.ok
        by_source = {job.source: job for job in report.jobs}
        assert by_source[str(good)].state == JobState.DONE
        assert by_source[str(good)].verdict is not None
        assert by_source[str(bad)].state == JobState.FAILED
        assert "corrupt apk" in by_source[str(bad)].error

    def test_missing_file_fails_the_job_not_the_service(self, tmp_path):
        report = submit_paths([str(tmp_path / "nope.gdx")])
        assert report.ok
        assert report.jobs[0].state == JobState.FAILED


# -- the soak acceptance test --------------------------------------------------


class TestSoakAcceptance:
    def test_hundred_app_soak_with_crash_and_oom(
        self, tmp_path, monkeypatch
    ):
        """ISSUE 5 acceptance: 100 apps, crash+OOM, zero loss, identical
        rows, retries/fallbacks visible in the exported run ledger."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        profile = GeneratorProfile(scale=0.04)
        corpus = AppCorpus(size=100, base_seed=911000, profile=profile)
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            report = run_soak(
                corpus,
                config=ServeConfig(workers=4, queue_capacity=16, vet=False),
                inject=frozenset({"worker-crash", "oom"}),
            )
        # Zero lost or duplicated jobs.
        assert report.submitted == 100
        assert report.lost == 0
        assert report.duplicates == 0
        assert report.completed == 100 and report.failed == 0
        # Faults actually fired and were survived.
        assert report.counters["serve.worker_crashes"] >= 1
        assert report.counters["serve.oom_events"] >= 1
        assert report.counters["serve.retries"] >= 1
        assert any(
            name.startswith("serve.fallback.") for name in report.counters
        )
        # Backpressure engaged: the window is far smaller than the run.
        assert report.counters["serve.queue_high_water"] <= 16

        # Results bit-identical to a direct evaluate_corpus sweep.
        direct = evaluate_corpus(corpus)
        rows = report.rows()
        assert len(rows) == 100
        for index in range(100):
            assert rows[index] == direct[index]

        # Every retry/fallback visible in the exported run ledger.
        from repro.obs.export import run_ledger

        ledger = run_ledger(tracer)
        counters = ledger["counters"]
        for name in (
            "serve.submitted",
            "serve.retries",
            "serve.worker_crashes",
            "serve.oom_events",
            "serve.degraded",
        ):
            assert counters[name] == report.counters[name], name
        assert any(
            span["category"] == "serve" for span in ledger["spans"]
        )

    def test_soak_report_round_trips_to_json(self):
        corpus = AppCorpus(size=3, base_seed=911100, profile=SERVE_PROFILE)
        report = run_soak(corpus, config=ServeConfig(workers=2))
        payload = json.loads(json.dumps(report.to_json(), sort_keys=True))
        assert payload["ok"] is True
        assert len(payload["jobs"]) == 3
        assert payload["jobs"][0]["state"] == "done"


# -- admission high-water accounting (regression) ------------------------------


class TestQueueHighWater:
    def test_high_water_ignores_concurrent_drains(self):
        """Regression: ``_record_admit`` used to read ``qsize()`` after
        the put, so a consumer draining in between made the high-water
        mark under-report the depth the admission actually created."""
        queue = AdmissionQueue(capacity=4)
        # Model the racing consumer: qsize() always sees an empty queue.
        queue._queue.qsize = lambda: 0
        queue.try_submit("a")
        assert queue.high_water == 1  # was 0 with the qsize() read

    def test_high_water_tracks_peak_depth_across_interleaving(self):
        async def scenario():
            queue = AdmissionQueue(capacity=8)
            await queue.submit("a")
            await queue.submit("b")
            await queue.submit("c")
            assert queue.high_water == 3
            queue.get_nowait()
            queue.get_nowait()
            # Refills below the old peak must not move the mark ...
            await queue.submit("d")
            assert queue.high_water == 3
            # ... and pushing past it must.
            await queue.submit("e")
            await queue.submit("f")
            await queue.submit("g")
            assert queue.high_water == 5

        asyncio.run(scenario())


# -- backoff jitter is order-independent (regression) --------------------------


class TestBackoffDeterminism:
    def _service(self):
        corpus = AppCorpus(size=1, base_seed=912000, profile=SERVE_PROFILE)
        return VettingService(
            CorpusSource(corpus),
            config=ServeConfig(
                backoff_base_s=0.01, backoff_cap_s=0.05, backoff_jitter=0.5
            ),
        )

    def test_schedule_survives_shuffled_completion_order(self):
        """Regression: jitter drawn from a shared RNG made a job's delay
        depend on how many *other* jobs drew first.  The delay must be
        a pure function of (seed, job_id, attempt), so any completion
        interleaving produces the identical schedule."""
        import random as stdlib_random

        pairs = [
            (f"job-{index:04d}", attempt)
            for index in range(25)
            for attempt in (1, 2, 3)
        ]
        in_order = {
            pair: self._service().backoff_s(*pair) for pair in pairs
        }
        shuffled = list(pairs)
        stdlib_random.Random(99).shuffle(shuffled)
        service = self._service()
        out_of_order = {pair: service.backoff_s(*pair) for pair in shuffled}
        assert out_of_order == in_order

    def test_fraction_is_interpreter_stable(self):
        """Golden values pin the sha256 derivation: builtin ``hash()``
        is salted per interpreter, so worker processes would disagree
        on the schedule -- the digest never does."""
        from repro.serve import backoff_fraction

        assert backoff_fraction(7, "job-0000", 1) == pytest.approx(
            0.4606443601424649, abs=0.0
        )
        assert backoff_fraction(7, "job-0000", 2) == pytest.approx(
            0.3793549594461701, abs=0.0
        )
        assert backoff_fraction(8, "job-0000", 1) != backoff_fraction(
            7, "job-0000", 1
        )


# -- job journal ---------------------------------------------------------------


class TestJobJournal:
    def test_roundtrip_admit_assign_terminal(self, tmp_path):
        from repro.serve import JobJournal, replay_journal

        path = tmp_path / "journal.jsonl"
        a, b = _job(0), _job(1)
        with JobJournal(path) as journal:
            journal.admit(a)
            journal.admit(b)
            a.attempts = 1
            journal.assign(a, worker=2)
            a.state, a.engine = JobState.DONE, ENGINE_GDROID
            journal.complete(a)
        state = replay_journal(path)
        assert state.truncated == 0
        assert list(state.admits) == ["job-0000", "job-0001"]
        assert state.pending_ids() == ["job-0001"]
        final = state.terminal["job-0000"]
        assert final["ev"] == "complete"
        assert final["state"] == JobState.DONE
        assert final["engine"] == ENGINE_GDROID
        rebuilt = state.jobs()[0]
        assert rebuilt.job_id == a.job_id
        assert rebuilt.est_cost == a.est_cost
        assert rebuilt.size_class == a.size_class
        assert rebuilt.state == JobState.PENDING  # replay rebuilds fresh

    def test_truncated_trailing_line_is_dropped_not_fatal(self, tmp_path):
        from repro.serve import JobJournal, replay_journal

        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as journal:
            journal.admit(_job(0))
            journal.admit(_job(1))
        # A crash mid-append leaves a partial final line.
        with open(path, "ab") as handle:
            handle.write(b'{"ev": "complete", "job": "job-00')
        state = replay_journal(path)
        assert state.truncated == 1
        assert len(state.records) == 2
        assert state.pending_ids() == ["job-0000", "job-0001"]

    def test_missing_journal_replays_empty(self, tmp_path):
        from repro.serve import replay_journal

        state = replay_journal(tmp_path / "never-written.jsonl")
        assert state.records == [] and state.truncated == 0
        assert state.jobs() == []

    def test_midfile_tear_counted_as_corrupt_not_truncated(self, tmp_path):
        """An undecodable line *before* the tail is not the benign
        crash signature: it must land on the ``corrupt`` counter."""
        from repro.serve import JobJournal, replay_journal

        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as journal:
            journal.admit(_job(0))
            journal.admit(_job(1))
        lines = path.read_bytes().split(b"\n")
        path.write_bytes(lines[0][:20] + b"\n" + b"\n".join(lines[1:]))
        state = replay_journal(path)
        assert state.corrupt == 1
        assert state.truncated == 0
        assert state.pending_ids() == ["job-0001"]

    def test_fsync_journal_replays_identically(self, tmp_path):
        from repro.serve import JobJournal, replay_journal

        path = tmp_path / "journal.jsonl"
        with JobJournal(path, fsync=True) as journal:
            journal.admit(_job(0))
        assert replay_journal(path).pending_ids() == ["job-0000"]

    def test_recovery_appends_to_the_same_journal(self, tmp_path):
        from repro.serve import JobJournal, replay_journal

        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as journal:
            journal.admit(_job(0))
        with JobJournal(path) as journal:  # reopen == append, not truncate
            journal.admit(_job(0))
            job = _job(0)
            job.state = JobState.DONE
            journal.complete(job)
        state = replay_journal(path)
        assert len(state.records) == 3
        assert len(state.admits) == 1  # first admit wins, replay is stable
        assert state.pending_ids() == []


# -- partitioned result store --------------------------------------------------


class TestPartitionResultStore:
    def test_write_poll_merge(self, tmp_path):
        from repro.serve import PartitionResultStore
        from repro.serve.journal import make_result_record

        store = PartitionResultStore(tmp_path / "state")
        store.write(
            0, "job-0000", 1,
            make_result_record("job-0000", 1, 0, "fault", fault="oom"),
        )
        store.write(
            1, "job-0000", 2,
            make_result_record("job-0000", 2, 1, "ok", engine="gdroid"),
        )
        store.write(
            1, "job-0001", 1,
            make_result_record("job-0001", 1, 1, "ok", engine="gdroid"),
        )
        seen: set = set()
        first = store.poll(seen)
        assert {record["job_id"] for record in first} == {
            "job-0000", "job-0001"
        }
        assert store.poll(seen) == []  # nothing new
        merged = store.merge()
        assert merged["job-0000"]["attempt"] == 2  # latest attempt wins
        assert merged["job-0000"]["kind"] == "ok"
        assert len(merged) == 2

    def test_row_payload_roundtrip(self, demo_app):
        from repro.bench.harness import evaluate_app
        from repro.serve.journal import row_from_payload, row_to_payload

        row = evaluate_app(demo_app)
        clone = row_from_payload(
            json.loads(json.dumps(row_to_payload(row)))
        )
        assert clone == row

    def test_stale_tmp_swept_on_open(self, tmp_path):
        import os
        import time as time_module

        from repro.serve import PartitionResultStore

        root = tmp_path / "state"
        partition = root / "worker-00"
        partition.mkdir(parents=True)
        dead = partition / ".tmp-orphan.json"
        dead.write_text("{}")
        stamp = time_module.time() - 7200.0
        os.utime(dead, (stamp, stamp))
        live = partition / ".tmp-live.json"
        live.write_text("{}")
        store = PartitionResultStore(root)
        assert store.tmp_purged == 1
        assert not dead.exists()
        assert live.exists()
        # .tmp files are invisible to poll either way.
        assert store.poll(set()) == []


# -- process worker pool -------------------------------------------------------


def _pool_config(tmp_path, **overrides):
    defaults = dict(
        workers=2,
        vet=False,
        pool="process",
        journal_path=str(tmp_path / "journal.jsonl"),
        state_dir=str(tmp_path / "state"),
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


class TestProcessPool:
    def test_clean_pooled_run_matches_async_rows(self, tmp_path):
        corpus = AppCorpus(size=8, base_seed=913000, profile=SERVE_PROFILE)
        pooled = run_soak(corpus, config=_pool_config(tmp_path))
        assert pooled.ok
        assert pooled.completed == 8 and pooled.failed == 0
        baseline = run_soak(corpus, config=ServeConfig(workers=2, vet=False))
        assert pooled.rows() == baseline.rows()
        # Transitions were journaled and rows persisted per partition.
        from repro.serve import PartitionResultStore, replay_journal

        state = replay_journal(tmp_path / "journal.jsonl")
        assert state.pending_ids() == []
        assert len(state.admits) == 8
        merged = PartitionResultStore(tmp_path / "state").merge()
        assert len(merged) == 8

    def test_injected_crash_is_a_real_process_death(self, tmp_path):
        """``worker-crash`` in pooled mode is ``os._exit`` in a real OS
        process: the orchestrator must reap the corpse, rehome its
        in-flight jobs and restart the lane -- losing nothing."""
        corpus = AppCorpus(size=10, base_seed=913100, profile=SERVE_PROFILE)
        report = run_soak(
            corpus,
            config=_pool_config(tmp_path, workers=2),
            inject=frozenset({"worker-crash"}),
        )
        assert report.ok and report.failed == 0
        assert report.counters["serve.worker_crashes"] >= 1
        assert report.counters["serve.pool.restarts"] >= 1
        assert report.counters["serve.retries"] >= 1

    def test_external_sigkill_mid_run_is_survived(self, tmp_path):
        """A worker SIGKILLed from *outside* (no injection cooperation
        at all) looks identical to the orchestrator: reap, rehome,
        restart, zero lost jobs."""
        import os
        import signal

        corpus = AppCorpus(size=12, base_seed=913200, profile=SERVE_PROFILE)
        source = CorpusSource(corpus)
        service = VettingService(source, config=_pool_config(tmp_path))

        async def scenario():
            async def killer():
                while service._pool is None or not any(service._pool.pids):
                    await asyncio.sleep(0.01)
                await asyncio.sleep(0.05)
                victim = next(
                    pid for pid in service._pool.pids if pid is not None
                )
                os.kill(victim, signal.SIGKILL)

            report, _ = await asyncio.gather(
                service.serve(source.jobs()), killer()
            )
            return report

        report = asyncio.run(scenario())
        assert report.ok
        assert report.completed + report.failed == 12
        assert report.counters["serve.worker_crashes"] >= 1
        assert report.counters["serve.pool.restarts"] >= 1

    def test_spawn_start_method_serves_identically(self, tmp_path):
        """Forcing ``spawn`` exercises the fully-pickled path (the only
        one available on fork-less platforms)."""
        corpus = AppCorpus(size=4, base_seed=913300, profile=SERVE_PROFILE)
        pooled = run_soak(
            corpus,
            config=_pool_config(tmp_path, start_method="spawn"),
        )
        assert pooled.ok and pooled.completed == 4
        baseline = run_soak(corpus, config=ServeConfig(workers=2, vet=False))
        assert pooled.rows() == baseline.rows()


class _RecordingPool:
    """Stand-in pool capturing submissions, for placement unit tests."""

    def __init__(self, workers: int) -> None:
        self.submitted = {worker_id: [] for worker_id in range(workers)}

    def submit(self, worker_id, jobs):
        self.submitted[worker_id].extend(jobs)


class TestDeadLanePlacement:
    """Regression: between ``reap()`` and ``restart()`` a lane's queue
    belongs to a corpse -- ``restart()`` swaps in a fresh queue, so any
    placement that targets the lane in that window (a dispatcher wave,
    an expiring retry task) would be silently dropped and the job stuck
    ASSIGNED forever."""

    def _service(self, tmp_path, workers, alive):
        corpus = AppCorpus(size=4, base_seed=913700, profile=SERVE_PROFILE)
        source = CorpusSource(corpus)
        service = VettingService(
            source, config=_pool_config(tmp_path, workers=workers)
        )
        service._pool = _RecordingPool(workers)
        service._owned = [{} for _ in range(workers)]
        service._lane_loads = [0.0] * workers
        service._lane_alive = list(alive)
        service._deferred = []
        return service, source.jobs(4)

    def test_dead_lane_never_receives_placements(self, tmp_path):
        service, jobs = self._service(tmp_path, 2, [False, True])
        # The dead lane's load was reset to 0.0 at reap time, which
        # (pre-fix) made it the preferred LPT target.
        service._lane_loads = [0.0, 500.0]
        service._place_pooled(make_batches(jobs))
        assert service._pool.submitted[0] == []
        assert len(service._pool.submitted[1]) == 4
        assert all(job.state == JobState.ASSIGNED for job in jobs)

    def test_all_lanes_dead_parks_batches_until_restart(self, tmp_path):
        service, jobs = self._service(tmp_path, 1, [False])
        service._place_pooled(make_batches(jobs))
        assert service._pool.submitted[0] == []
        assert service._deferred
        # Parked jobs are untouched: no attempt burned, no ASSIGNED
        # state that would strand them if the service shut down now.
        assert all(job.attempts == 0 for job in jobs)
        # The pump loop re-places the parked batches after restart.
        service._lane_alive[0] = True
        deferred, service._deferred = service._deferred, []
        service._place_pooled(deferred)
        assert len(service._pool.submitted[0]) == 4
        assert all(job.attempts == 1 for job in jobs)


class TestLaneProgressMarker:
    def test_reap_reads_exact_starts_from_marker(self, tmp_path):
        """A lane SIGKILLed *between* jobs consumed no extra start: the
        marker says exactly how many it consumed, where the old
        results-plus-one heuristic would drift the fault schedule."""
        from repro.serve.pool import (
            PoolSpec,
            ProcessWorkerPool,
            _progress_path,
        )

        spec = PoolSpec(state_dir=str(tmp_path / "state"))
        pool = ProcessWorkerPool(spec, 1)
        marker = _progress_path(spec.state_dir, 0)
        marker.write_bytes(b"%010d\n" % 3)
        pool._lane_results[0] = 3
        heuristic = pool._starts[0] + pool._lane_results[0] + 1
        assert heuristic == 4  # what reap would have guessed pre-fix
        assert pool._read_starts(0, fallback=heuristic) == 3
        marker.unlink()  # unreadable marker falls back to the guess
        assert pool._read_starts(0, fallback=heuristic) == 4

    def test_spawn_seeds_marker_with_carried_starts(self, tmp_path):
        """A lane killed before its first job must read back what it
        inherited, not a stale prior incarnation's counter."""
        from repro.serve.pool import (
            PoolSpec,
            ProcessWorkerPool,
            _progress_path,
        )

        spec = PoolSpec(state_dir=str(tmp_path / "state"))
        pool = ProcessWorkerPool(spec, 1)
        pool._starts[0] = 5
        pool._spawn(0)
        try:
            marker = _progress_path(spec.state_dir, 0)
            assert int(marker.read_text().strip()) == 5
        finally:
            pool.stop()


# -- orchestrator crash + journal recovery -------------------------------------


class TestCrashRecovery:
    def test_crash_after_raises_and_recovery_stitches(self, tmp_path):
        from repro.serve import ServiceCrash, recover

        corpus = AppCorpus(size=10, base_seed=913400, profile=SERVE_PROFILE)
        crash_cfg = _pool_config(tmp_path, crash_after=4)
        with pytest.raises(ServiceCrash):
            run_soak(corpus, config=crash_cfg)
        report = recover(
            CorpusSource(corpus), _pool_config(tmp_path)
        )
        assert report.ok
        assert report.submitted == 10
        assert report.completed == 10 and report.failed == 0
        assert report.counters["serve.recovered.finished"] >= 4
        assert (
            report.counters["serve.recovered.finished"]
            + report.counters["serve.recovered.pending"]
            == 10
        )
        baseline = run_soak(
            corpus, config=ServeConfig(workers=2, vet=False)
        )
        assert report.rows() == baseline.rows()

    def test_recovered_rows_are_reloaded_not_reevaluated(self, tmp_path):
        """Jobs journaled terminal come back with their persisted rows:
        recovery of a fully-finished run re-serves nothing."""
        from repro.serve import recover

        corpus = AppCorpus(size=5, base_seed=913500, profile=SERVE_PROFILE)
        first = run_soak(corpus, config=_pool_config(tmp_path))
        assert first.ok
        report = recover(CorpusSource(corpus), _pool_config(tmp_path))
        assert report.ok
        assert report.counters["serve.recovered.finished"] == 5
        assert report.counters["serve.recovered.pending"] == 0
        assert report.counters.get("serve.submitted", 0) == 0
        assert report.rows() == first.rows()

    def test_async_mode_journals_and_recovers_too(self, tmp_path):
        """Durability is not process-pool-only: the async orchestrator
        journals transitions and persists rows itself."""
        from repro.serve import ServiceCrash, recover

        corpus = AppCorpus(size=8, base_seed=913600, profile=SERVE_PROFILE)
        crash_cfg = _pool_config(
            tmp_path, pool="async", workers=2, crash_after=3
        )
        with pytest.raises(ServiceCrash):
            run_soak(corpus, config=crash_cfg)
        report = recover(
            CorpusSource(corpus), _pool_config(tmp_path, pool="async")
        )
        assert report.ok
        assert report.completed == 8
        baseline = run_soak(
            corpus, config=ServeConfig(workers=2, vet=False)
        )
        assert report.rows() == baseline.rows()


# -- streaming admission feeds -------------------------------------------------


class TestStreamingFeeds:
    def _write_apps(self, directory, seeds):
        from repro.apk.loader import save_gdx
        from tests.conftest import tiny_app

        directory.mkdir(parents=True, exist_ok=True)
        for seed in seeds:
            save_gdx(tiny_app(seed), directory / f"app-{seed}.gdx")

    def test_directory_feed_serves_arrivals_until_stop(self, tmp_path):
        from repro.serve import DirectoryFeed, serve_stream

        inbox = tmp_path / "inbox"
        self._write_apps(inbox, [1, 2, 3])
        (inbox / "STOP").touch()
        feed = DirectoryFeed(inbox, poll_s=0.01, idle_s=5.0)
        report = serve_stream(feed, config=ServeConfig(workers=2, vet=False))
        assert report.ok
        assert report.submitted == 3
        assert report.completed == 3
        assert report.counters["serve.feed.admitted"] == 3

    def test_directory_feed_idle_timeout_drains_and_exits(self, tmp_path):
        from repro.serve import DirectoryFeed, serve_stream

        inbox = tmp_path / "inbox"
        self._write_apps(inbox, [4])
        feed = DirectoryFeed(inbox, poll_s=0.01, idle_s=0.2)
        report = serve_stream(feed, config=ServeConfig(workers=1, vet=False))
        assert report.ok and report.completed == 1

    def test_directory_feed_streams_into_process_pool(self, tmp_path):
        from repro.serve import DirectoryFeed, serve_stream

        inbox = tmp_path / "inbox"
        self._write_apps(inbox, [5, 6])
        (inbox / "STOP").touch()
        feed = DirectoryFeed(inbox, poll_s=0.01)
        report = serve_stream(
            feed, config=_pool_config(tmp_path, workers=2)
        )
        assert report.ok and report.completed == 2
        for job in report.jobs:
            assert job.source.endswith(".gdx")

    def test_stdin_feed_reads_paths_until_eof(self, tmp_path):
        import io

        from repro.serve import StdinFeed, serve_stream

        inbox = tmp_path / "inbox"
        self._write_apps(inbox, [7, 8])
        listing = "".join(
            f"{path}\n" for path in sorted(inbox.glob("*.gdx"))
        )
        feed = StdinFeed(stream=io.StringIO(listing + "\n"))
        report = serve_stream(feed, config=ServeConfig(workers=2, vet=False))
        assert report.ok and report.completed == 2

    def test_empty_feed_completes_cleanly(self, tmp_path):
        from repro.serve import DirectoryFeed, serve_stream

        inbox = tmp_path / "inbox"
        inbox.mkdir()
        (inbox / "STOP").touch()
        feed = DirectoryFeed(inbox, poll_s=0.01)
        report = serve_stream(feed, config=ServeConfig(workers=1))
        assert report.ok and report.submitted == 0

    def test_stdin_feed_reader_is_daemon_and_cancellable(self):
        """Regression: the blocking readline must not run on the loop's
        default executor -- executor threads are joined at interpreter
        shutdown, so a run cancelled before stdin EOF would hang exit.
        A dedicated daemon thread parks harmlessly instead."""
        import os
        import threading

        from repro.serve import StdinFeed

        read_fd, write_fd = os.pipe()
        stream = os.fdopen(read_fd, "r")
        feed = StdinFeed(stream=stream)

        async def scenario():
            generator = feed.jobs().__aiter__()
            task = asyncio.ensure_future(generator.__anext__())
            await asyncio.sleep(0.05)
            pumps = [
                thread
                for thread in threading.enumerate()
                if thread.name == "gdroid-stdin-feed"
            ]
            assert pumps and all(thread.daemon for thread in pumps)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            return pumps

        pumps = asyncio.run(scenario())
        # EOF unblocks the parked reader; it must wind down on its own.
        os.close(write_fd)
        for thread in pumps:
            thread.join(timeout=2.0)
            assert not thread.is_alive()
        stream.close()

    def test_recovery_replays_watch_jobs_from_their_paths(self, tmp_path):
        """Regression: a crashed ``--watch`` run journals jobs whose
        ``source`` is a ``.gdx`` path.  ``--recover`` rebuilds with a
        corpus-backed source, which must load those journaled paths --
        not regenerate unrelated corpus apps by index."""
        from repro.apk.loader import load_gdx
        from repro.bench.harness import evaluate_app
        from repro.serve import JobJournal, recover
        from repro.serve.sharder import classify as classify_nodes

        inbox = tmp_path / "inbox"
        self._write_apps(inbox, [11, 12])
        paths = sorted(inbox.glob("*.gdx"))
        journal_path = tmp_path / "journal.jsonl"
        with JobJournal(journal_path) as journal:
            for index, path in enumerate(paths):
                size = float(path.stat().st_size)
                journal.admit(
                    VetJob(
                        job_id=f"feed-{index:04d}",
                        index=index,
                        package=path.stem,
                        source=str(path),
                        est_cost=size,
                        size_class=classify_nodes(size / 12.0),
                    )
                )
        corpus = AppCorpus(size=4, base_seed=913800, profile=SERVE_PROFILE)
        report = recover(
            CorpusSource(corpus),
            _pool_config(tmp_path, pool="async", workers=1),
        )
        assert report.ok and report.completed == 2
        by_index = {job.index: job for job in report.jobs}
        for index, path in enumerate(paths):
            expected = evaluate_app(load_gdx(path))
            assert by_index[index].row == expected


# -- the journal-recovery acceptance test --------------------------------------


class TestJournalRecoveryAcceptance:
    def test_thousand_app_soak_survives_sigkill_and_restart(
        self, tmp_path, monkeypatch
    ):
        """ISSUE 8 acceptance: a 1000-app soak whose worker process is
        ``kill -9``-ed mid-run and whose orchestrator then dies is
        restarted from the journal and finishes with zero lost or
        duplicated jobs and rows identical to an uninterrupted run."""
        import os
        import signal

        from repro.serve import ServiceCrash, recover

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        profile = GeneratorProfile(scale=0.02)
        corpus = AppCorpus(size=1000, base_seed=914100, profile=profile)
        source = CorpusSource(corpus)
        crash_cfg = _pool_config(tmp_path, workers=3, crash_after=400)
        service = VettingService(source, config=crash_cfg)

        async def interrupted_run():
            async def killer():
                # Wait for live lanes, let the run make progress, then
                # SIGKILL one worker from outside -- no cooperation.
                while service._pool is None or not any(service._pool.pids):
                    await asyncio.sleep(0.01)
                await asyncio.sleep(1.0)
                victim = next(
                    pid for pid in service._pool.pids if pid is not None
                )
                os.kill(victim, signal.SIGKILL)

            await asyncio.gather(service.serve(source.jobs()), killer())

        with pytest.raises(ServiceCrash):
            asyncio.run(interrupted_run())
        # The dead run observed the external kill before it crashed.
        assert service.counters["serve.worker_crashes"] >= 1

        report = recover(
            CorpusSource(corpus), _pool_config(tmp_path, workers=3)
        )
        # Zero lost, zero duplicated -- across the crash boundary.
        assert report.ok
        assert report.submitted == 1000
        assert report.completed == 1000 and report.failed == 0
        assert report.counters["serve.recovered.finished"] >= 1
        assert (
            report.counters["serve.recovered.finished"]
            + report.counters["serve.recovered.pending"]
            == 1000
        )
        # Result-set equality with an uninterrupted run.
        direct = evaluate_corpus(corpus)
        rows = report.rows()
        assert len(rows) == 1000
        for index in range(1000):
            assert rows[index] == direct[index]
