"""Conventional-iterative baseline tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.intra import build_intra_cfg
from repro.dataflow.iterative import ConventionalIterative, reverse_post_order
from repro.dataflow.worklist import SequentialWorklist
from repro.ir.parser import parse_app
from tests.conftest import tiny_app


class TestRPO:
    def test_straight_line(self):
        app = parse_app(
            "app p\nmethod a.B.m()V\n  L0: nop\n  L1: nop\n  L2: return\nend\n"
        )
        cfg = build_intra_cfg(app.method("a.B.m()V"))
        assert reverse_post_order(cfg) == [0, 1, 2]

    def test_branch_precedes_join(self):
        app = parse_app(
            "app p\nmethod a.B.m()V\n"
            "  local c: I\n"
            "  L0: if c then goto L2\n  L1: nop\n  L2: return\nend\n"
        )
        cfg = build_intra_cfg(app.method("a.B.m()V"))
        order = reverse_post_order(cfg)
        # Both branch arms come before the join.
        assert order.index(2) > order.index(0)
        assert order.index(2) > order.index(1)

    def test_unreachable_nodes_last(self):
        app = parse_app(
            "app p\nmethod a.B.m()V\n"
            "  L0: goto L2\n  L1: nop\n  L2: return\nend\n"
        )
        cfg = build_intra_cfg(app.method("a.B.m()V"))
        assert reverse_post_order(cfg)[-1] == 1


class TestConventionalIterative:
    @pytest.mark.parametrize("order", ConventionalIterative.ORDERS)
    def test_matches_worklist_fixed_point(self, demo_app, order):
        method = demo_app.method(
            "com.demo.Main.onCreate(Landroid/content/Intent;)V"
        )
        worklist = SequentialWorklist(method).run()
        iterative = ConventionalIterative(method, order=order).run()
        assert iterative.facts.node_facts == worklist.node_facts
        assert iterative.facts.exit_facts == worklist.exit_facts

    def test_unknown_order_rejected(self, demo_app):
        method = demo_app.methods[0]
        with pytest.raises(ValueError):
            ConventionalIterative(method, order="chaotic")

    def test_rpo_converges_in_fewer_sweeps_than_reverse(self, demo_app):
        """The classic result: sweep order determines convergence speed
        for forward problems."""
        method = demo_app.method(
            "com.demo.Main.onCreate(Landroid/content/Intent;)V"
        )
        rpo = ConventionalIterative(method, order="rpo").run()
        reverse = ConventionalIterative(method, order="reverse-body").run()
        assert rpo.sweeps <= reverse.sweeps

    def test_fixed_full_workload_redundancy(self):
        """The paper's argument against the conventional algorithm:
        its workload per iteration is the *whole* node set, so even a
        converged body pays full sweeps (including the final
        verification sweep), where the worklist touches each node once.

        The comparison is order- and shape-sensitive in general (on
        exception-heavy join-dense CFGs ordered sweeps can beat a FIFO
        worklist -- the classic RPO result), so the canonical case is a
        chain body."""
        chain = "".join(f"  L{i}: x := new a.C{i}\n" for i in range(30))
        app = parse_app(
            "app p\nmethod a.B.m()V\n"
            "  local x: Ljava/lang/Object;\n"
            f"{chain}  L30: return\nend\n"
        )
        method = app.method("a.B.m()V")
        runner = SequentialWorklist(method)
        runner.run()
        iterative = ConventionalIterative(method).run()
        # Worklist: one visit per node.  Conventional: at least one
        # full working sweep plus the full verification sweep.
        assert runner.visits == len(method.statements)
        assert iterative.sweeps >= 2
        assert iterative.visits >= 2 * len(method.statements)
        assert iterative.visits > runner.visits

    def test_empty_method(self):
        app = parse_app("app p\nmethod a.B.m()V\nend\n")
        result = ConventionalIterative(app.method("a.B.m()V")).run()
        assert result.sweeps == 0 and result.visits == 0


@settings(max_examples=8, deadline=None)
@given(
    app_seed=st.integers(min_value=0, max_value=200),
    order=st.sampled_from(ConventionalIterative.ORDERS),
)
def test_iterative_agrees_with_worklist_on_random_methods(app_seed, order):
    app = tiny_app(app_seed)
    leaves = [
        m
        for m in app.methods
        if not any(c in app.method_table for c in m.callees())
    ]
    method = max(leaves, key=len)
    worklist = SequentialWorklist(method).run()
    iterative = ConventionalIterative(method, order=order).run()
    assert iterative.facts.node_facts == worklist.node_facts
