"""Trace dataclass helpers and workload-profile accounting."""

import pytest

from repro.core.engine import AppWorkload
from repro.core.trace import BlockTrace, IterationRecord, NodeMeta, VisitRecord
from tests.conftest import tiny_app


def make_trace():
    meta = tuple(
        NodeMeta(
            node=i,
            method="a.B.m()V",
            local_index=i,
            branch_class=i % 25,
            group=i % 3,
            grouped_position=i,
            successors=(i + 1,) if i < 2 else (),
            row_words=2,
        )
        for i in range(3)
    )
    trace = BlockTrace(block_id=0, layer=0, methods=("a.B.m()V",), node_meta=meta)
    trace.iterations.append(
        IterationRecord(
            worklist_size=2,
            visits=(
                VisitRecord(node=0, in_size=1, out_size=2, new_facts=(2,), first_visit=True),
                VisitRecord(node=1, in_size=2, out_size=2, new_facts=(0,), first_visit=True),
            ),
            growth=((1, 2),),
        )
    )
    trace.iterations.append(
        IterationRecord(
            worklist_size=1,
            visits=(
                VisitRecord(node=2, in_size=2, out_size=2, new_facts=(), first_visit=True),
            ),
        )
    )
    return trace


class TestBlockTrace:
    def test_counters(self):
        trace = make_trace()
        assert trace.node_count == 3
        assert trace.iteration_count == 2
        assert trace.visit_count == 3
        assert trace.worklist_sizes() == [2, 1]
        assert trace.max_worklist() == 2

    def test_empty_trace(self):
        trace = BlockTrace(block_id=0, layer=0, methods=(), node_meta=())
        assert trace.max_worklist() == 0
        assert trace.visit_count == 0


class TestWorkloadProfileAccounting:
    def test_totals_are_consistent(self):
        workload = AppWorkload.build(tiny_app(23))
        profile = workload.profile
        # Sizes histogram length == iteration count, per dynamics.
        assert len(profile.worklist_sizes_sync) == profile.iterations_sync
        assert len(profile.worklist_sizes_mer) == profile.iterations_mer
        # Sync visits equal the sum of worklist sizes (whole-list
        # processing); MER dedups but its postponement can add a few
        # revisits on tiny apps, so the bound is approximate.
        assert profile.visits_sync == sum(profile.worklist_sizes_sync)
        assert profile.visits_mer <= profile.visits_sync * 1.15

    def test_staged_bytes_scale_with_nodes(self):
        small = AppWorkload.build(tiny_app(23))
        from tests.conftest import SMALL_PROFILE
        from repro.apk.generator import AppGenerator

        big = AppWorkload.build(AppGenerator(SMALL_PROFILE).generate(23))
        assert big.staged_bytes() > small.staged_bytes()
        assert small.staged_bytes() == small.profile.cfg_nodes * 256
