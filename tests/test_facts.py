"""Unit tests for the pre-determined slot/instance pools."""

import pytest

from repro.dataflow.facts import ARRAY_FIELD, CalleeFootprint, FactSpace
from repro.ir.parser import parse_app


def space_for(body: str, params: str = "", footprints=None):
    from repro.ir.parser import _split_descriptors

    declares = "".join(
        f"  param a{i}: {d}\n"
        for i, d in enumerate(_split_descriptors(params))
    )
    app = parse_app(f"app p\nmethod a.B.m({params})V\n{declares}{body}end\n")
    return FactSpace(app.method(f"a.B.m({params})V"), footprints)


def test_allocation_sites_pooled():
    space = space_for(
        "  local x: Ljava/lang/Object;\n"
        "  L0: x := new a.B\n  L1: x := new a.C\n  L2: return\n"
    )
    assert space.site_instance("L0") != space.site_instance("L1")
    assert space.instances[space.site_instance("L0")] == ("site", "L0", "a.B")


def test_constants_pooled_once():
    space = space_for(
        "  local x: Ljava/lang/Object;\n"
        '  L0: x := "a"\n  L1: x := "b"\n  L2: x := null\n  L3: return\n'
    )
    assert space.const_instance("str") is not None
    assert space.null_instance() is not None
    # One shared pool entry per constant tag, not per occurrence.
    assert sum(1 for i in space.instances if i[0] == "const") == 1


def test_param_instances_only_for_objects():
    space = space_for("  L0: return\n", params="Ljava/lang/Object;I")
    assert space.param_instance(0) is not None
    assert space.param_instance(1) is None


def test_heap_slots_for_stored_fields():
    space = space_for(
        "  local x: Ljava/lang/Object;\n  local y: Ljava/lang/Object;\n"
        "  L0: x := new a.B\n  L1: x.f := y\n  L2: y := x.g\n  L3: return\n"
    )
    assert set(space.fields) == {"f", "g"}
    site = space.site_instance("L0")
    # f is stored somewhere, so the site has a cell for it; g is only
    # ever read, and an unwritten cell always reads empty -- omitted.
    assert space.heap_slot(site, "f") is not None
    assert space.heap_slot(site, "g") is None


def test_param_instances_keep_cells_for_all_fields():
    space = space_for(
        "  local y: Ljava/lang/Object;\n"
        "  L0: y := a0.g\n  L1: a0.f := y\n  L2: return\n",
        params="Ljava/lang/Object;",
    )
    param = space.param_instance(0)
    # Reads of parameter fields need their symbolic seeds.
    assert space.heap_slot(param, "g") is not None
    assert space.heap_slot(param, "f") is not None


def test_array_cells_use_pseudo_field():
    space = space_for(
        "  local a: [Ljava/lang/Object;\n  local i: I\n"
        "  local x: Ljava/lang/Object;\n"
        "  L0: x := a[i]\n  L1: return\n"
    )
    assert ARRAY_FIELD in space.fields


def test_globals_pooled_from_statements():
    space = space_for(
        "  local x: Ljava/lang/Object;\n"
        "  L0: x := @@p.G.g\n  L1: @@p.G.h := x\n  L2: return\n"
    )
    assert set(space.globals) == {"p.G.g", "p.G.h"}
    assert space.global_instance("p.G.g") is not None


def test_callee_footprint_extends_pools():
    footprint = CalleeFootprint(
        globals_touched=frozenset({"p.G.ext"}),
        fields_written=frozenset({"fOut"}),
        returns_value=True,
    )
    space = space_for(
        "  local x: Ljava/lang/Object;\n"
        "  L0: call x := a.B.callee()Ljava/lang/Object;(x)\n  L1: return\n",
        footprints={"a.B.callee()Ljava/lang/Object;": footprint},
    )
    assert "p.G.ext" in space.globals
    assert "fOut" in space.fields
    assert space.call_instance("L0") is not None


def test_encode_decode_inverse():
    space = space_for(
        "  local x: Ljava/lang/Object;\n  L0: x := new a.B\n  L1: return\n"
    )
    for slot in range(space.slot_count):
        for instance in range(space.instance_count):
            assert space.decode(space.encode(slot, instance)) == (slot, instance)


def test_entry_facts_seed_params_globals_and_pfields():
    space = space_for(
        "  local y: Ljava/lang/Object;\n"
        "  L0: y := a0.f\n  L1: y := @@p.G.g\n  L2: return\n",
        params="Ljava/lang/Object;",
    )
    entry = {space.decode_named(f) for f in space.entry_facts()}
    assert (("var", "a0"), ("param", 0)) in entry
    assert (("global", "p.G.g"), ("global", "p.G.g")) in entry
    param_instance = space.param_instance(0)
    assert (
        space.slots[space.heap_slot(param_instance, "f")],
        ("pfield", 0, "f"),
    ) in entry


def test_pools_deterministic():
    build = lambda: space_for(
        "  local x: Ljava/lang/Object;\n"
        "  L0: x := new a.B\n  L1: x.f := x\n  L2: return\n"
    )
    a, b = build(), build()
    assert a.instances == b.instances
    assert a.slots == b.slots
