"""ICC (inter-component communication) analysis tests."""

import pytest

from repro.core.engine import AppWorkload
from repro.ir.parser import parse_app
from repro.vetting.icc import IccAnalysis
from repro.vetting.report import vet_workload

SRC = "android.telephony.TelephonyManager.getDeviceId()Ljava/lang/String;"
START = "android.content.Context.startActivity(Landroid/content/Intent;)V"
BCAST = "android.content.Context.sendBroadcast(Landroid/content/Intent;)V"

ICC_APP = f"""
app com.icc category tools
component com.icc.Sender activity exported
  callback onCreate com.icc.Sender.send()V
end
component com.icc.Stealer activity exported
  filter android.intent.action.VIEW
  callback onCreate com.icc.Sender.noop()V
end
component com.icc.Quiet service
  callback onCreate com.icc.Sender.noop()V
end
method com.icc.Sender.send()V
  local id: Ljava/lang/String;
  local intent: Landroid/content/Intent;
  L0: call id := {SRC}()
  L1: intent := new android.content.Intent
  L2: intent.fData := id
  L3: call {START}(intent)
  L4: return
end
method com.icc.Sender.noop()V
  L0: return
end
"""


def analyze(source: str):
    app = parse_app(source)
    workload = AppWorkload.build(app, record_mer=False)
    return app, workload, IccAnalysis(workload.analyzed_app, workload.idfg).run()


class TestIccDetection:
    def test_tainted_intent_send_detected(self):
        _, _, flows = analyze(ICC_APP)
        assert len(flows) == 1
        flow = flows[0]
        assert flow.target_kind == "activity"
        assert SRC in flow.source_apis
        assert flow.send_label == "L3"

    def test_candidate_receivers_are_exported_matching_kind(self):
        _, _, flows = analyze(ICC_APP)
        receivers = flows[0].candidate_receivers
        # Both activities are exported/filtered; the service is neither
        # the right kind nor exported.
        assert "com.icc.Stealer" in receivers
        assert "com.icc.Quiet" not in receivers
        assert flows[0].escapes_app

    def test_untainted_intent_is_quiet(self):
        clean = ICC_APP.replace(f"call id := {SRC}()", 'id := "static"')
        _, _, flows = analyze(clean)
        assert flows == []

    def test_broadcast_targets_receivers(self):
        source = ICC_APP.replace(START, BCAST)
        app = parse_app(source)
        workload = AppWorkload.build(app, record_mer=False)
        flows = IccAnalysis(workload.analyzed_app, workload.idfg).run()
        assert flows[0].target_kind == "receiver"
        # No exported receiver components exist -> internal only.
        assert not flows[0].escapes_app


class TestReportIntegration:
    def test_icc_raises_risk_without_direct_sink(self):
        app = parse_app(ICC_APP)
        workload = AppWorkload.build(app, record_mer=False)
        report = vet_workload(app, workload)
        assert not report.flows  # no direct exfiltration sink
        assert report.icc_flows
        assert report.risk_score >= 6
        assert report.verdict == "suspicious"
        assert "Intent" in report.summary()
