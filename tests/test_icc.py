"""ICC (inter-component communication) analysis tests."""


from repro.core.engine import AppWorkload
from repro.ir.parser import parse_app
from repro.vetting.icc import IccAnalysis
from repro.vetting.report import vet_app, vet_workload

SRC = "android.telephony.TelephonyManager.getDeviceId()Ljava/lang/String;"
START = "android.content.Context.startActivity(Landroid/content/Intent;)V"
BCAST = "android.content.Context.sendBroadcast(Landroid/content/Intent;)V"

ICC_APP = f"""
app com.icc category tools
component com.icc.Sender activity exported
  callback onCreate com.icc.Sender.send()V
end
component com.icc.Stealer activity exported
  filter android.intent.action.VIEW
  callback onCreate com.icc.Sender.noop()V
end
component com.icc.Quiet service
  callback onCreate com.icc.Sender.noop()V
end
method com.icc.Sender.send()V
  local id: Ljava/lang/String;
  local intent: Landroid/content/Intent;
  L0: call id := {SRC}()
  L1: intent := new android.content.Intent
  L2: intent.fData := id
  L3: call {START}(intent)
  L4: return
end
method com.icc.Sender.noop()V
  L0: return
end
"""


def analyze(source: str):
    app = parse_app(source)
    workload = AppWorkload.build(app, record_mer=False)
    return app, workload, IccAnalysis(workload.analyzed_app, workload.idfg).run()


class TestIccDetection:
    def test_tainted_intent_send_detected(self):
        _, _, flows = analyze(ICC_APP)
        assert len(flows) == 1
        flow = flows[0]
        assert flow.target_kind == "activity"
        assert SRC in flow.source_apis
        assert flow.send_label == "L3"

    def test_candidate_receivers_are_exported_matching_kind(self):
        _, _, flows = analyze(ICC_APP)
        receivers = flows[0].candidate_receivers
        # Both activities are exported/filtered; the service is neither
        # the right kind nor exported.
        assert "com.icc.Stealer" in receivers
        assert "com.icc.Quiet" not in receivers
        assert flows[0].escapes_app

    def test_untainted_intent_is_quiet(self):
        clean = ICC_APP.replace(f"call id := {SRC}()", 'id := "static"')
        _, _, flows = analyze(clean)
        assert flows == []

    def test_broadcast_targets_receivers(self):
        source = ICC_APP.replace(START, BCAST)
        app = parse_app(source)
        workload = AppWorkload.build(app, record_mer=False)
        flows = IccAnalysis(workload.analyzed_app, workload.idfg).run()
        assert flows[0].target_kind == "receiver"
        # No exported receiver components exist -> internal only.
        assert not flows[0].escapes_app


class TestIccEdgeCases:
    def test_zero_manifest_components(self):
        # All sends escape nowhere when the manifest declares nothing.
        headless = (
            "\napp com.icc category tools\n"
            "method com.icc.Sender.send()V\n"
            "  local id: Ljava/lang/String;\n"
            "  local intent: Landroid/content/Intent;\n"
            f"  L0: call id := {SRC}()\n"
            "  L1: intent := new android.content.Intent\n"
            "  L2: intent.fData := id\n"
            f"  L3: call {START}(intent)\n"
            "  L4: return\n"
            "end\n"
        )
        app, _, flows = analyze(headless)
        assert app.components == ()
        assert len(flows) == 1
        assert flows[0].candidate_receivers == ()
        assert not flows[0].escapes_app

    def test_taint_elsewhere_but_intent_arg_clean(self):
        # The device id is read and kept in a local; the Intent never
        # carries it, so no ICC flow exists despite the tainted app.
        source = ICC_APP.replace("L2: intent.fData := id", "L2: nop")
        _, _, flows = analyze(source)
        assert flows == []

    def test_multiple_send_sites_in_one_method(self):
        source = ICC_APP.replace(
            f"  L3: call {START}(intent)\n",
            f"  L3: call {START}(intent)\n"
            f"  L3b: call {START}(intent)\n",
        )
        _, _, flows = analyze(source)
        assert [flow.send_label for flow in flows] == ["L3", "L3b"]
        assert len({(f.method, f.send_label) for f in flows}) == 2


SET_CLASS = (
    "android.content.Intent.setClassName"
    "(Landroid/content/Intent;Ljava/lang/String;)V"
)
SINK = "android.util.Log.d(Ljava/lang/String;Ljava/lang/String;)I"

LINKED_APP = f"""
app com.icc category tools
component com.icc.Sender activity exported
  callback onCreate com.icc.Sender.send()V
end
component com.icc.Drain activity
  callback onCreate com.icc.Drain.leak(Landroid/content/Intent;)V
end
method com.icc.Sender.send()V
  local id: Ljava/lang/String;
  local name: Ljava/lang/String;
  local intent: Landroid/content/Intent;
  L0: call id := {SRC}()
  L1: intent := new android.content.Intent
  L2: intent.fData := id
  L3: name := "com.icc.Drain"
  L4: call {SET_CLASS}(intent, name)
  L5: call {START}(intent)
  L6: return
end
method com.icc.Drain.leak(Landroid/content/Intent;)V
  param p0: Landroid/content/Intent;
  local tag: Ljava/lang/String;
  local got: Ljava/lang/String;
  L0: tag := "drain"
  L1: got := p0.fData
  L2: call {SINK}(tag, got)
  L3: return
end
"""


class TestRenderingAndStitching:
    def test_str_snapshot_internal_only(self):
        # The exact target is not exported: the hijack surface is
        # empty, and the rendering carries resolution provenance.
        _, _, flows = analyze(LINKED_APP)
        assert len(flows) == 1
        assert str(flows[0]) == (
            "com.icc.Sender.send()V @ L5: Intent(activity) "
            "carries 1 source(s) -> (internal only) [exact]"
        )

    def test_str_snapshot_escaping_over_approx(self):
        _, _, flows = analyze(ICC_APP)
        assert str(flows[0]) == (
            "com.icc.Sender.send()V @ L3: Intent(activity) "
            "carries 1 source(s) -> com.icc.Sender, com.icc.Stealer"
        )

    def test_stitch_links_source_to_receiver_sink(self):
        app = parse_app(LINKED_APP)
        workload = AppWorkload.build(app, record_mer=False)
        analysis = IccAnalysis(workload.analyzed_app, workload.idfg)
        flows = analysis.run()
        linked = analysis.stitch(flows)
        assert len(linked) == 1
        leak = linked[0]
        assert leak.components == ("com.icc.Drain",)
        assert leak.sink_method == "com.icc.Drain.leak(Landroid/content/Intent;)V"
        assert leak.sink_api == SINK
        assert SRC in leak.source_apis
        assert "=> [com.icc.Drain] =>" in str(leak)

    def test_report_grades_linked_leak_critical(self):
        report = vet_app(parse_app(LINKED_APP))
        assert report.linked_flows
        assert report.risk_score >= 9
        assert report.verdict == "likely-malicious"
        assert "linked" in report.summary()


class TestReportIntegration:
    def test_icc_raises_risk_without_direct_sink(self):
        app = parse_app(ICC_APP)
        workload = AppWorkload.build(app, record_mer=False)
        report = vet_workload(app, workload)
        assert not report.flows  # no direct exfiltration sink
        assert report.icc_flows
        assert report.risk_score >= 6
        assert report.verdict == "suspicious"
        assert "Intent" in report.summary()
