"""Engine tests: workload construction, config pricing, orderings."""

import pytest

from repro.core.config import GDroidConfig, TuningParameters
from repro.core.engine import AppWorkload, GDroid
from repro.dataflow.worklist import analyze_app_reference
from tests.conftest import tiny_app


@pytest.fixture(scope="module")
def workload():
    return AppWorkload.build(tiny_app(1))


class TestConfig:
    def test_variant_names(self):
        assert GDroidConfig.plain().name == "plain"
        assert GDroidConfig.mat_only().name == "MAT"
        assert GDroidConfig.mat_grp().name == "MAT+GRP"
        assert GDroidConfig.all_optimizations().name == "MAT+GRP+MER"

    def test_tuning_validation(self):
        with pytest.raises(ValueError):
            TuningParameters(methods_per_block=0)
        with pytest.raises(ValueError):
            TuningParameters(blocks_per_sm=0)

    def test_with_tuning(self):
        config = GDroidConfig.plain().with_tuning(methods_per_block=2)
        assert config.tuning.methods_per_block == 2


class TestWorkload:
    def test_idfg_matches_oracle(self, workload):
        reference = analyze_app_reference(workload.app)
        assert workload.idfg.equivalent_to(reference)

    def test_profile_populated(self, workload):
        profile = workload.profile
        assert profile.cfg_nodes > 0
        assert profile.methods == workload.analyzed_app.method_count()
        assert profile.blocks == len(workload.block_results)
        assert profile.iterations_sync > 0
        assert profile.visits_sync >= profile.visits_mer > 0
        assert len(profile.worklist_sizes_sync) == profile.iterations_sync

    def test_partition_covers_every_method(self, workload):
        assigned = [
            method
            for layer in workload.partition
            for block in layer
            for method in block.methods
        ]
        assert sorted(assigned) == sorted(workload.analyzed_app.method_table)
        assert len(assigned) == len(set(assigned))

    def test_blocks_track_methods_per_block_target(self):
        """methods_per_block is an average target: the layer's block
        count is ceil(methods / target); LPT balances load freely."""
        workload = AppWorkload.build(
            tiny_app(2), tuning=TuningParameters(methods_per_block=2)
        )
        layering = workload.layering
        for layer_index, layer_blocks in enumerate(workload.partition):
            methods = sum(len(scc) for scc in layering.layers[layer_index])
            if methods:
                expected = min(
                    len(layering.layers[layer_index]), -(-methods // 2)
                )
                assert len(layer_blocks) == expected

    def test_memory_footprints(self, workload):
        assert 0 < workload.matrix_store_footprint() < workload.set_store_footprint()

    def test_without_mer_recording(self):
        workload = AppWorkload.build(tiny_app(1), record_mer=False)
        assert all(r.trace_mer is None for r in workload.block_results)
        assert workload.profile.iterations_mer == 0


class TestPricing:
    def test_all_configs_share_the_same_idfg(self, workload):
        results = [
            GDroid(config).price(workload)
            for config in (
                GDroidConfig.plain(),
                GDroidConfig.mat_only(),
                GDroidConfig.mat_grp(),
                GDroidConfig.all_optimizations(),
            )
        ]
        for result in results[1:]:
            assert result.idfg is results[0].idfg

    def test_mat_beats_plain(self, workload):
        plain = GDroid(GDroidConfig.plain()).price(workload)
        mat = GDroid(GDroidConfig.mat_only()).price(workload)
        assert mat.total_cycles < plain.total_cycles
        assert mat.memory_bytes < plain.memory_bytes

    def test_result_fields(self, workload):
        result = GDroid(GDroidConfig.all_optimizations()).price(workload)
        assert result.modeled_time_s > 0
        assert result.iterations > 0
        assert result.visits > 0
        assert result.kernels  # one launch per non-empty layer
        assert set(result.breakdown) >= {"compute_cycles", "memory_cycles"}

    def test_kernel_count_matches_layers(self, workload):
        result = GDroid(GDroidConfig.plain()).price(workload)
        non_empty_layers = sum(1 for layer in workload.partition if layer)
        assert len(result.kernels) == non_empty_layers

    def test_analyze_accepts_app_directly(self):
        result = GDroid(GDroidConfig.mat_only()).analyze(tiny_app(5))
        assert result.total_cycles > 0

    def test_deterministic_pricing(self, workload):
        config = GDroidConfig.all_optimizations()
        first = GDroid(config).price(workload)
        second = GDroid(config).price(workload)
        assert first.total_cycles == second.total_cycles
