"""End-to-end integration: the complete vetting pipeline, on disk and off."""

import pytest

from repro.apk.loader import load_gdx, save_gdx
from repro.bench.harness import evaluate_app
from repro.core.config import GDroidConfig
from repro.core.engine import AppWorkload, GDroid
from repro.dataflow.worklist import analyze_app_reference
from repro.ir.printer import print_app
from repro.vetting.report import vet_workload
from tests.conftest import tiny_app


@pytest.mark.parametrize("seed", [8, 21])
def test_full_pipeline_from_disk(tmp_path, seed):
    """generate -> pack -> load -> analyze -> verify -> vet."""
    app = tiny_app(seed)
    path = tmp_path / "app.gdx"
    save_gdx(app, path)
    loaded = load_gdx(path)
    assert print_app(loaded) == print_app(app)

    workload = AppWorkload.build(loaded)
    # Correctness: the GPU pipeline's IDFG equals the oracle's.
    reference = analyze_app_reference(loaded)
    assert workload.idfg.equivalent_to(reference)

    # Every configuration prices the same workload; full GDroid wins.
    plain = GDroid(GDroidConfig.plain()).price(workload)
    full = GDroid(GDroidConfig.all_optimizations()).price(workload)
    assert full.total_cycles < plain.total_cycles
    assert full.memory_bytes < plain.memory_bytes

    # The vetting plugin runs on the same IDFG.
    report = vet_workload(loaded, workload, analysis_time_s=full.modeled_time_s)
    assert report.verdict in ("clean", "low-risk", "suspicious", "likely-malicious")


def test_paper_ordering_holds_on_average():
    """Across a handful of apps, the cumulative optimizations keep the
    paper's ordering: plain > MAT > MAT+GRP(~) > full, on average."""
    ratios = {"mat": [], "grp": [], "mer": []}
    for seed in range(6):
        row = evaluate_app(tiny_app(seed + 50))
        ratios["mat"].append(row.plain_s / row.mat_s)
        ratios["grp"].append(row.mat_s / row.grp_s)
        ratios["mer"].append(row.grp_s / row.full_s)
    mean = lambda xs: sum(xs) / len(xs)
    assert mean(ratios["mat"]) > 3.0     # MAT is the big win
    assert mean(ratios["mer"]) > 0.9     # MER helps or is neutral
    assert 0.5 < mean(ratios["grp"]) < 3.0  # GRP is slight either way


def test_modeled_times_scale_with_app_size():
    small = evaluate_app(tiny_app(70))
    from repro.apk.generator import AppGenerator
    from tests.conftest import SMALL_PROFILE

    big_app = AppGenerator(SMALL_PROFILE).generate(70)
    big = evaluate_app(big_app)
    assert big.cfg_nodes > small.cfg_nodes
    assert big.ama_total_s > small.ama_total_s
