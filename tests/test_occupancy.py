"""Shared-memory occupancy tests."""

import dataclasses

import pytest

from repro.gpu.occupancy import (
    BLOCK_SHARED_OVERHEAD_BYTES,
    WORKLIST_ENTRY_BYTES,
    block_shared_bytes,
    occupancy,
)
from repro.gpu.spec import TESLA_P40


class TestBlockSharedBytes:
    def test_double_buffered_worklists(self):
        expected = BLOCK_SHARED_OVERHEAD_BYTES + 2 * 100 * WORKLIST_ENTRY_BYTES
        assert block_shared_bytes(100) == expected

    def test_grp_adds_sort_scratch(self):
        assert block_shared_bytes(100, use_grp=True) > block_shared_bytes(100)

    def test_minimum_width(self):
        assert block_shared_bytes(0) == block_shared_bytes(1)


class TestOccupancy:
    def test_small_worklists_allow_many_blocks(self):
        report = occupancy(max_worklist_length=74, blocks_per_sm=5)
        # 74-entry worklists need ~1.7 KB: dozens fit in 48 KB.
        assert report.feasible
        assert report.effective_blocks_per_sm == 5

    def test_huge_worklists_cap_residency(self):
        report = occupancy(max_worklist_length=2000, blocks_per_sm=5)
        assert report.max_resident_blocks <= 2
        assert not report.feasible
        assert report.effective_blocks_per_sm == report.max_resident_blocks

    def test_hardware_block_cap_respected(self):
        report = occupancy(max_worklist_length=1, blocks_per_sm=64)
        assert report.max_resident_blocks <= TESLA_P40.max_blocks_per_sm

    def test_tiny_shared_memory_device(self):
        spec = dataclasses.replace(TESLA_P40, shared_memory_per_sm_bytes=2048)
        report = occupancy(max_worklist_length=64, blocks_per_sm=4, spec=spec)
        assert report.max_resident_blocks == 1


class TestEngineIntegration:
    def test_occupancy_limits_pricing(self):
        """A shared-memory-starved device serializes blocks; modeled
        time must not improve over the real P40."""
        from repro.core.config import GDroidConfig
        from repro.core.engine import AppWorkload, GDroid
        from tests.conftest import tiny_app

        workload = AppWorkload.build(tiny_app(14))
        normal = GDroid(GDroidConfig.all_optimizations()).price(workload)
        starved_spec = dataclasses.replace(
            TESLA_P40, shared_memory_per_sm_bytes=1024
        )
        starved = GDroid(
            GDroidConfig.all_optimizations(spec=starved_spec)
        ).price(workload)
        assert starved.kernel_cycles >= normal.kernel_cycles
