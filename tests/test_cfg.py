"""Unit tests for intra-CFG, call graph, environments and ICFG."""

import pytest

from repro.cfg.callgraph import CallGraph, SBDALayering
from repro.cfg.environment import (
    app_with_environments,
    synthesize_environment,
    synthesize_environments,
)
from repro.cfg.icfg import build_icfg
from repro.cfg.intra import build_intra_cfg
from repro.ir.parser import parse_app


def cfg_of(body: str, extra: str = ""):
    app = parse_app(f"app p\nmethod a.B.m()V\n{extra}{body}end\n")
    return build_intra_cfg(app.method("a.B.m()V"))


class TestIntraCFG:
    def test_straight_line(self):
        cfg = cfg_of("  L0: nop\n  L1: nop\n  L2: return\n")
        assert cfg.successors == ((1,), (2,), ())
        assert cfg.exits == (2,)
        assert cfg.entry == 0
        assert not cfg.has_back_edge()

    def test_branch_and_join(self):
        cfg = cfg_of(
            "  L0: if c then goto L2\n  L1: nop\n  L2: return\n"
        )
        assert set(cfg.successors[0]) == {1, 2}
        assert cfg.predecessors[2] == (0, 1)

    def test_loop_detected(self):
        cfg = cfg_of("  L0: nop\n  L1: if c then goto L0\n  L2: return\n")
        assert cfg.has_back_edge()

    def test_goto_has_no_fall_through(self):
        cfg = cfg_of("  L0: goto L2\n  L1: nop\n  L2: return\n")
        assert cfg.successors[0] == (2,)

    def test_reachability_skips_orphans(self):
        cfg = cfg_of("  L0: goto L2\n  L1: nop\n  L2: return\n")
        assert 1 not in cfg.reachable_nodes()

    def test_exception_edges(self):
        cfg = cfg_of(
            "  L0: o := new a.B\n"
            "  L1: nop\n"
            "  L2: nop\n"
            "  L3: o := Exception\n"
            "  L4: return\n",
            extra="  local o: Ljava/lang/Object;\n  catch L3 from L0 to L1\n",
        )
        # L0 may throw -> edge to the handler at index 3; L1 is a nop
        # inside the covered range and cannot throw.
        assert 3 in cfg.successors[0]
        assert cfg.successors[1] == (2,)

    def test_edge_count(self):
        cfg = cfg_of("  L0: nop\n  L1: return\n")
        assert cfg.edge_count() == 1


class TestCallGraphAndLayering:
    def test_layers_bottom_up(self, demo_app):
        layering = SBDALayering(CallGraph(demo_app))
        helper = "com.demo.Main.helper(Ljava/lang/Object;)Ljava/lang/Object;"
        main = "com.demo.Main.onCreate(Landroid/content/Intent;)V"
        assert layering.layer_of(helper) == 0
        assert layering.layer_of(main) == 1
        layering.validate()

    def test_external_callees_tracked(self, leaky_app):
        graph = CallGraph(leaky_app)
        externals = graph.external_callees[
            "com.leaky.Main.leak()V"
        ]
        assert any("TelephonyManager" in callee for callee in externals)
        assert graph.edge_count() == 0

    def test_recursive_scc_shares_layer(self):
        app = parse_app(
            "app p\n"
            "method a.B.f()V\n  L0: call a.B.g()V()\n  L1: return\nend\n"
            "method a.B.g()V\n  L0: call a.B.f()V()\n  L1: return\nend\n"
        )
        layering = SBDALayering(CallGraph(app))
        assert layering.scc_of("a.B.f()V") == ("a.B.f()V", "a.B.g()V")
        assert CallGraph(app).is_recursive()
        layering.validate()

    def test_bottom_up_respects_dependencies(self, demo_app):
        layering = SBDALayering(CallGraph(demo_app))
        seen = set()
        for scc in layering.bottom_up():
            for signature in scc:
                for callee in demo_app.method_table[signature].callees():
                    if callee in demo_app.method_table and callee not in scc:
                        assert callee in seen
                seen.add(signature)


class TestEnvironments:
    def test_environment_calls_every_callback(self, demo_app):
        component = demo_app.components[0]
        env = synthesize_environment(component, demo_app)
        callees = env.callees()
        assert set(callees) == set(component.callbacks.values())
        # The loop back edge over-approximates framework re-driving.
        assert build_intra_cfg(env).has_back_edge()

    def test_app_with_environments_adds_methods(self, demo_app):
        augmented = app_with_environments(demo_app)
        assert len(augmented.methods) == len(demo_app.methods) + 1
        assert "com.demo.Main.__env__()V" in augmented.method_table

    def test_environments_keyed_by_signature(self, demo_app):
        envs = synthesize_environments(demo_app)
        assert list(envs) == ["com.demo.Main.__env__()V"]


class TestICFG:
    def test_spans_are_contiguous(self, demo_app):
        augmented = app_with_environments(demo_app)
        icfg = build_icfg(augmented)
        for signature, (start, end) in icfg.method_span.items():
            for node in range(start, end):
                assert icfg.method_of(node) == signature

    def test_call_and_return_edges(self, demo_app):
        augmented = app_with_environments(demo_app)
        icfg = build_icfg(augmented)
        main = "com.demo.Main.onCreate(Landroid/content/Intent;)V"
        helper = "com.demo.Main.helper(Ljava/lang/Object;)Ljava/lang/Object;"
        call_sites = [
            (site, entry)
            for site, entry in icfg.call_edges
            if icfg.method_of(site) == main and icfg.method_of(entry) == helper
        ]
        assert call_sites, "expected a call edge main -> helper"
        site = call_sites[0][0]
        helper_exit_returns = [
            (source, target)
            for source, target in icfg.return_edges
            if icfg.method_of(source) == helper
        ]
        assert helper_exit_returns
        # Interprocedural successors include the callee entry.
        assert call_sites[0][1] in icfg.interprocedural_successors(site)

    def test_node_count_covers_reachable_methods(self, demo_app):
        augmented = app_with_environments(demo_app)
        icfg = build_icfg(augmented)
        expected = sum(
            len(augmented.method_table[s]) for s in icfg.method_span
        )
        assert len(icfg) == expected

    def test_default_roots_without_components(self):
        app = parse_app(
            "app p\n"
            "method a.B.top()V\n  L0: call a.B.leaf()V()\n  L1: return\nend\n"
            "method a.B.leaf()V\n  L0: return\nend\n"
        )
        icfg = build_icfg(app)
        assert set(icfg.methods()) == {"a.B.top()V", "a.B.leaf()V"}
