"""ICC target-resolution tests (repro.vetting.icc_resolve)."""

from repro.apk.generator import (
    ICC_SCENARIOS,
    generate_app,
    icc_scenario_profile,
)
from repro.core.engine import AppWorkload
from repro.ir.parser import parse_app
from repro.vetting.icc import IccAnalysis
from repro.vetting.icc_resolve import (
    RESOLUTION_EXACT,
    RESOLUTION_FILTERED,
    RESOLUTION_OVER_APPROX,
    RESOLUTIONS,
)
from repro.vetting.report import vet_app

SRC = "android.telephony.TelephonyManager.getDeviceId()Ljava/lang/String;"
START = "android.content.Context.startActivity(Landroid/content/Intent;)V"
SET_CLASS = (
    "android.content.Intent.setClassName"
    "(Landroid/content/Intent;Ljava/lang/String;)V"
)
SET_ACTION = (
    "android.content.Intent.setAction"
    "(Landroid/content/Intent;Ljava/lang/String;)V"
)
RANDOM = "java.util.UUID.randomUUID()Ljava/lang/String;"

APP_TEMPLATE = f"""
app com.res category tools
component com.res.Sender activity exported
  callback onCreate com.res.Sender.send()V
end
component com.res.Stealer activity exported
  filter android.intent.action.VIEW
  callback onCreate com.res.Sender.noop()V
end
component com.res.Mirror activity exported
  filter android.intent.action.SEND
  callback onCreate com.res.Sender.noop()V
end
method com.res.Sender.send()V
  local id: Ljava/lang/String;
  local name: Ljava/lang/String;
  local intent: Landroid/content/Intent;
  L0: call id := {SRC}()
  L1: intent := new android.content.Intent
  L2: intent.fData := id
  L3: BINDING
  L4: call {START}(intent)
  L5: return
end
method com.res.Sender.noop()V
  L0: return
end
"""


def flows_for(binding: str, prefix: str = ""):
    source = APP_TEMPLATE.replace("L3: BINDING", binding)
    if prefix:
        source = source.replace("L0: call id :=", prefix + "\n  L0: call id :=")
    app = parse_app(source)
    workload = AppWorkload.build(app, record_mer=False)
    analysis = IccAnalysis(workload.analyzed_app, workload.idfg)
    return analysis, analysis.run()


#: Every exported activity: the legacy kind-wide receiver set.
OVER_APPROX = ("com.res.Mirror", "com.res.Sender", "com.res.Stealer")


class TestClassification:
    def test_constant_class_binding_is_exact(self):
        _, flows = flows_for(
            f'L3: name := "com.res.Stealer"\n'
            f"  La: call {SET_CLASS}(intent, name)"
        )
        assert len(flows) == 1
        flow = flows[0]
        assert flow.resolution == RESOLUTION_EXACT
        assert flow.candidate_receivers == ("com.res.Stealer",)
        assert flow.resolved_targets == ("com.res.Stealer",)
        assert set(flow.candidate_receivers) <= set(OVER_APPROX)

    def test_constant_action_binding_is_filtered(self):
        _, flows = flows_for(
            f'L3: name := "android.intent.action.VIEW"\n'
            f"  La: call {SET_ACTION}(intent, name)"
        )
        flow = flows[0]
        assert flow.resolution == RESOLUTION_FILTERED
        # Only the component advertising the VIEW filter survives.
        assert flow.candidate_receivers == ("com.res.Stealer",)
        assert flow.resolved_targets == ()

    def test_dynamic_class_binding_stays_over_approx(self):
        _, flows = flows_for(
            f"L3: call name := {RANDOM}()\n"
            f"  La: call {SET_CLASS}(intent, name)"
        )
        flow = flows[0]
        assert flow.resolution == RESOLUTION_OVER_APPROX
        assert flow.candidate_receivers == OVER_APPROX

    def test_unbound_send_stays_over_approx(self):
        _, flows = flows_for("L3: nop")
        flow = flows[0]
        assert flow.resolution == RESOLUTION_OVER_APPROX
        assert flow.candidate_receivers == OVER_APPROX

    def test_binding_on_other_intent_does_not_apply(self):
        # The constant binds a *different* Intent instance; points-to
        # association must keep the tainted send over-approximated.
        _, flows = flows_for(
            'L3: other := new android.content.Intent\n'
            f'  La: name := "com.res.Stealer"\n'
            f"  Lb: call {SET_CLASS}(other, name)",
        )
        flow = flows[0]
        assert flow.resolution == RESOLUTION_OVER_APPROX
        assert flow.candidate_receivers == OVER_APPROX

    def test_exact_target_naming_external_component_is_internal_only(self):
        # A constant class target outside the app: nothing in-app can
        # receive it, so the hijack surface collapses to empty.
        _, flows = flows_for(
            f'L3: name := "com.elsewhere.Export"\n'
            f"  La: call {SET_CLASS}(intent, name)"
        )
        flow = flows[0]
        assert flow.resolution == RESOLUTION_EXACT
        assert flow.candidate_receivers == ()
        assert not flow.escapes_app

    def test_interprocedural_constant_resolves(self):
        source = APP_TEMPLATE.replace(
            "L3: BINDING",
            "L3: call name := com.res.Sender.target()Ljava/lang/String;()\n"
            f"  La: call {SET_CLASS}(intent, name)",
        ) + (
            "method com.res.Sender.target()Ljava/lang/String;\n"
            "  local r: Ljava/lang/String;\n"
            '  L0: r := "com.res.Mirror"\n'
            "  L1: return r\n"
            "end\n"
        )
        app = parse_app(source)
        workload = AppWorkload.build(app, record_mer=False)
        flows = IccAnalysis(workload.analyzed_app, workload.idfg).run()
        assert flows[0].resolution == RESOLUTION_EXACT
        assert flows[0].candidate_receivers == ("com.res.Mirror",)


class TestResolveDisabled:
    def test_resolve_off_reproduces_legacy_flows(self):
        source = APP_TEMPLATE.replace(
            "L3: BINDING",
            f'L3: name := "com.res.Stealer"\n'
            f"  La: call {SET_CLASS}(intent, name)",
        )
        app = parse_app(source)
        workload = AppWorkload.build(app, record_mer=False)
        analysis = IccAnalysis(
            workload.analyzed_app, workload.idfg, resolve=False
        )
        flows = analysis.run()
        assert analysis.resolver is None
        assert flows[0].resolution == RESOLUTION_OVER_APPROX
        assert flows[0].candidate_receivers == OVER_APPROX
        assert flows[0].resolved_targets == ()
        assert analysis.stitch(flows) == []


class TestSubsetProperty:
    def test_resolved_subset_of_over_approx_across_corpus(self):
        """resolved ⊆ over-approx for every send of every scenario app."""
        profiles = [
            (scenario, icc_scenario_profile(scenario, scale=0.35))
            for scenario in ICC_SCENARIOS
        ]
        profiles.append(("default", None))
        checked = 0
        for scenario, profile in profiles:
            for seed in (41, 4242):
                app = generate_app(seed, profile)
                resolved = vet_app(app)
                legacy = vet_app(app, resolve_icc=False)
                over = {
                    (f.method, f.send_label): f.candidate_receivers
                    for f in legacy.icc_flows
                }
                assert len(resolved.icc_flows) == len(legacy.icc_flows)
                for flow in resolved.icc_flows:
                    key = (flow.method, flow.send_label)
                    assert flow.resolution in RESOLUTIONS
                    assert set(flow.candidate_receivers) <= set(over[key])
                    assert flow.candidate_receivers == tuple(
                        sorted(flow.candidate_receivers)
                    )
                    checked += 1
                for flow in legacy.icc_flows:
                    assert flow.resolution == RESOLUTION_OVER_APPROX
                assert legacy.linked_flows == ()
        assert checked > 0
