"""Cost-adapter tests: the four bottleneck channels react correctly."""

import pytest

from repro.core.blockexec import BlockRunner
from repro.core.blocks import BlockAssignment
from repro.core.config import GDroidConfig
from repro.core.costing import _SetCapacityModel, _sort_cycles, price_block, set_store_bytes
from repro.core.gdroid_kernel import price_gdroid_block, select_trace
from repro.core.plain_kernel import price_plain_block
from repro.dataflow.lattice import INITIAL_CAPACITY
from repro.gpu.spec import CostTable


@pytest.fixture
def block_result(demo_app):
    from repro.cfg.environment import app_with_environments

    analyzed = app_with_environments(demo_app)
    helper = "com.demo.Main.helper(Ljava/lang/Object;)Ljava/lang/Object;"
    main = "com.demo.Main.onCreate(Landroid/content/Intent;)V"
    assignment = BlockAssignment(block_id=0, layer=0, methods=(helper, main))
    return BlockRunner(analyzed, assignment, {}, record_mer=True).run()


class TestCapacityModel:
    def test_doubling_events(self):
        model = _SetCapacityModel()
        assert model.grow_to(0, INITIAL_CAPACITY) == 0
        assert model.grow_to(0, INITIAL_CAPACITY + 1) == 1
        # Already at 2x initial; reaching 8x needs two more doublings.
        assert model.grow_to(0, INITIAL_CAPACITY * 8) == 2
        # Shrinking never deallocates.
        assert model.grow_to(0, 1) == 0

    def test_independent_nodes(self):
        model = _SetCapacityModel()
        model.grow_to(0, 1000)
        assert model.grow_to(1, INITIAL_CAPACITY + 1) == 1


class TestSortCost:
    def test_zero_for_trivial(self):
        assert _sort_cycles(CostTable(), 0) == 0.0
        assert _sort_cycles(CostTable(), 1) == 0.0

    def test_minimum_network_width(self):
        costs = CostTable()
        # Short lists still pay the minimum tile.
        assert _sort_cycles(costs, 2) == _sort_cycles(costs, 12)
        assert _sort_cycles(costs, 64) > _sort_cycles(costs, 12)


class TestPriceBlock:
    def test_plain_pays_alloc_stalls(self, block_result):
        cost = price_plain_block(block_result, GDroidConfig.plain())
        assert cost.alloc_stall_cycles >= 0
        assert cost.cycles > 0
        assert cost.sort_cycles == 0.0

    def test_mat_never_allocates(self, block_result):
        cost = price_gdroid_block(block_result, GDroidConfig.mat_only())
        assert cost.alloc_stall_cycles == 0.0

    def test_grp_pays_sort(self, block_result):
        cost = price_gdroid_block(block_result, GDroidConfig.mat_grp())
        assert cost.sort_cycles > 0.0

    def test_mat_cheaper_than_plain(self, block_result):
        plain = price_plain_block(block_result, GDroidConfig.plain())
        mat = price_gdroid_block(block_result, GDroidConfig.mat_only())
        assert mat.cycles < plain.cycles

    def test_mer_uses_merging_trace(self, block_result):
        full = GDroidConfig.all_optimizations()
        assert select_trace(block_result, full) is block_result.trace_mer
        assert (
            select_trace(block_result, GDroidConfig.mat_grp())
            is block_result.trace_sync
        )

    def test_mer_without_trace_is_an_error(self, demo_app):
        from repro.cfg.environment import app_with_environments

        analyzed = app_with_environments(demo_app)
        helper = "com.demo.Main.helper(Ljava/lang/Object;)Ljava/lang/Object;"
        assignment = BlockAssignment(block_id=0, layer=0, methods=(helper,))
        result = BlockRunner(analyzed, assignment, {}, record_mer=False).run()
        with pytest.raises(ValueError, match="MER trace"):
            price_gdroid_block(result, GDroidConfig.all_optimizations())

    def test_visits_and_iterations_reported(self, block_result):
        cost = price_plain_block(block_result, GDroidConfig.plain())
        trace = block_result.trace_sync
        # The fixture packs a caller with its callee, which the runner
        # treats as a joint-fixed-point group: charged per round.
        rounds = trace.summary_rounds
        assert cost.iterations == trace.iteration_count * rounds
        assert cost.node_visits == trace.visit_count * rounds

    def test_divergence_lower_with_grp(self, block_result):
        """GRP reduces per-warp branch classes (25-way -> 3-way)."""
        mat = price_gdroid_block(block_result, GDroidConfig.mat_only())
        grp = price_gdroid_block(block_result, GDroidConfig.mat_grp())
        assert grp.divergence_cycles <= mat.divergence_cycles

    def test_alloc_scales_with_cost_table(self, block_result):
        cheap = GDroidConfig.plain(costs=CostTable().scaled(dynamic_alloc_cycles=1.0))
        pricey = GDroidConfig.plain(costs=CostTable().scaled(dynamic_alloc_cycles=1e6))
        low = price_plain_block(block_result, cheap)
        high = price_plain_block(block_result, pricey)
        if low.alloc_stall_cycles > 0:
            assert high.cycles > low.cycles


class TestGrpWarpHomogeneity:
    def test_sorted_warps_minimize_group_transitions(self, block_result):
        """After GRP's partial sort, group changes happen at most at
        two warp-stream positions per iteration (one per group
        boundary), so the per-warp divergent passes are minimal."""
        from repro.core.costing import _lane_for_visit
        from repro.gpu.warp import form_warps

        config = GDroidConfig.mat_grp()
        trace = block_result.trace_sync
        meta = trace.node_meta
        for iteration in trace.iterations:
            visits = sorted(iteration.visits, key=lambda v: meta[v.node].group)
            groups = [meta[v.node].group for v in visits]
            transitions = sum(
                1 for a, b in zip(groups, groups[1:]) if a != b
            )
            assert transitions <= 2  # at most 3 contiguous group runs
            lanes = [_lane_for_visit(v, meta, config) for v in visits]
            extra_passes = sum(
                len({lane.branch_class for lane in warp}) - 1
                for warp in form_warps(lanes, 32)
            )
            assert extra_passes <= transitions


class TestSetStoreBytes:
    def test_footprint_counts_headers_and_capacity(self, block_result):
        nbytes = set_store_bytes(
            block_result.trace_sync, block_result.seed_sizes
        )
        from repro.dataflow.lattice import BYTES_PER_ENTRY, SET_HEADER_BYTES

        floor = block_result.trace_sync.node_count * (
            SET_HEADER_BYTES + INITIAL_CAPACITY * BYTES_PER_ENTRY
        )
        assert nbytes >= floor
