"""Benchmark-infrastructure tests: stats, figures, harness."""

import pytest

from repro.apk.corpus import AppCorpus
from repro.bench.figures import render_series, render_table, sparkline
from repro.bench.harness import evaluate_app, evaluate_corpus
from repro.bench.stats import (
    describe,
    percent_below,
    percent_between,
    size_mix,
    sorted_descending,
)
from tests.conftest import TINY_PROFILE, tiny_app


class TestStats:
    def test_percent_below(self):
        assert percent_below([1, 2, 3, 4], 3) == 50.0
        assert percent_below([], 3) == 0.0

    def test_percent_between(self):
        assert percent_between([1, 2, 3, 4], 2, 4) == 50.0

    def test_size_mix(self):
        assert size_mix([1, 32, 33, 64, 65, 100]) == (2, 2, 2)

    def test_describe(self):
        summary = describe([3.0, 1.0, 2.0])
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["mean"] == 2.0
        assert describe([])["n"] == 0

    def test_sorted_descending(self):
        assert sorted_descending([1, 3, 2]) == [3, 2, 1]


class TestFigures:
    def test_sparkline_bounds(self):
        line = sparkline(list(range(200)), width=40)
        assert len(line) == 40

    def test_sparkline_constant_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "   "

    def test_render_table(self):
        text = render_table("T", [("m", "1x", "1.1x")])
        assert "T" in text and "1.1x" in text

    def test_render_series(self):
        text = render_series("Fig", [1.0, 2.0, 3.0])
        assert "max 3.00x" in text


class TestHarness:
    def test_evaluate_app_fields(self):
        row = evaluate_app(tiny_app(0))
        assert row.plain_s > 0 and row.full_s > 0 and row.cpu_s > 0
        assert row.mat_speedup > 1.0
        assert row.gdroid_speedup == pytest.approx(row.plain_s / row.full_s)
        assert 0 < row.memory_ratio < 1
        assert 0 < row.idfg_fraction < 1
        assert sum(row.wl_mix_sync) == row.iterations_sync

    def test_corpus_cache(self):
        corpus = AppCorpus(size=2, profile=TINY_PROFILE, base_seed=990)
        first = evaluate_corpus(corpus)
        second = evaluate_corpus(corpus)
        assert [r.package for r in first] == [r.package for r in second]
        # Cached objects are reused, not recomputed.
        assert first[0] is second[0]

    def test_corpus_limit(self):
        corpus = AppCorpus(size=4, profile=TINY_PROFILE, base_seed=991)
        rows = evaluate_corpus(corpus, limit=2)
        assert len(rows) == 2
