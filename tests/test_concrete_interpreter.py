"""Unit tests for the concrete interpreter itself."""

import pytest

from repro.dataflow.concrete import (
    ConcreteInterpreter,
    ConcreteObject,
    ExecutionBudgetExceeded,
)
from repro.ir.parser import parse_app


def interpret(source: str, signature: str, seed: int = 0, **kwargs):
    app = parse_app(source)
    interpreter = ConcreteInterpreter(
        app, app.method(signature), seed=seed, **kwargs
    )
    return interpreter, interpreter.run()


class TestBasics:
    def test_observations_tag_allocations(self):
        _, observations = interpret(
            "app p\nmethod a.B.m()V\n"
            "  local x: Ljava/lang/Object;\n"
            "  L0: x := new a.B\n  L1: nop\n  L2: return\nend\n",
            "a.B.m()V",
        )
        tags = {o.tag for o in observations if o.variable == "x"}
        assert ("site", "L0", "a.B") in tags

    def test_param_objects_are_symbolic(self):
        _, observations = interpret(
            "app p\nmethod a.B.m(Ljava/lang/Object;)V\n"
            "  param p: Ljava/lang/Object;\n"
            "  L0: nop\n  L1: return\nend\n",
            "a.B.m(Ljava/lang/Object;)V",
        )
        assert ("param", 0) in {o.tag for o in observations}

    def test_param_field_loads_use_pfield_tags(self):
        _, observations = interpret(
            "app p\nmethod a.B.m(Ljava/lang/Object;)V\n"
            "  param p: Ljava/lang/Object;\n"
            "  local x: Ljava/lang/Object;\n"
            "  L0: x := p.f\n  L1: nop\n  L2: return\nend\n",
            "a.B.m(Ljava/lang/Object;)V",
        )
        assert ("pfield", 0, "f") in {
            o.tag for o in observations if o.variable == "x"
        }

    def test_budget_exceeded_on_hot_loop(self):
        app = parse_app(
            "app p\nmethod a.B.m()V\n  L0: goto L0\n  L1: return\nend\n"
        )
        interpreter = ConcreteInterpreter(
            app, app.method("a.B.m()V"), max_steps=50
        )
        with pytest.raises(ExecutionBudgetExceeded):
            interpreter.run()

    def test_throw_without_handler_terminates(self):
        _, observations = interpret(
            "app p\nmethod a.B.m()V\n"
            "  local x: Ljava/lang/Object;\n"
            "  L0: x := new a.B\n  L1: throw x\n  L2: x := new a.C\n"
            "  L3: return\nend\n",
            "a.B.m()V",
        )
        # L2 never executes.
        assert all(o.node != 2 for o in observations)

    def test_throw_reaches_handler(self):
        _, observations = interpret(
            "app p\nmethod a.B.m()V\n"
            "  local x: Ljava/lang/Object;\n"
            "  catch L2 from L0 to L1\n"
            "  L0: x := new a.B\n  L1: throw x\n  L2: x := Exception\n"
            "  L3: return\nend\n",
            "a.B.m()V",
        )
        assert ("exc", "L2") in {o.tag for o in observations}


class TestCalls:
    APP = (
        "app p\n"
        "method a.B.top()V\n"
        "  local x: Ljava/lang/Object;\n"
        "  local y: Ljava/lang/Object;\n"
        "  L0: x := new a.B\n"
        "  L1: call y := a.B.identity(Ljava/lang/Object;)Ljava/lang/Object;(x)\n"
        "  L2: call x := a.B.fresh()Ljava/lang/Object;()\n"
        "  L3: nop\n"
        "  L4: return\nend\n"
        "method a.B.identity(Ljava/lang/Object;)Ljava/lang/Object;\n"
        "  param p: Ljava/lang/Object;\n"
        "  L0: return p\nend\n"
        "method a.B.fresh()Ljava/lang/Object;\n"
        "  local n: Ljava/lang/Object;\n"
        "  L0: n := new a.N\n  L1: return n\nend\n"
    )

    def test_identity_call_preserves_caller_tag(self):
        _, observations = interpret(self.APP, "a.B.top()V")
        y_tags = {o.tag for o in observations if o.variable == "y"}
        assert ("site", "L0", "a.B") in y_tags

    def test_fresh_call_retagged_by_call_site(self):
        _, observations = interpret(self.APP, "a.B.top()V")
        x_at_l3 = {
            o.tag for o in observations if o.variable == "x" and o.node == 3
        }
        assert x_at_l3 == {("call", "L2")}

    def test_depth_limit_makes_calls_opaque(self):
        app = parse_app(self.APP)
        interpreter = ConcreteInterpreter(
            app, app.method("a.B.top()V"), max_depth=0
        )
        observations = interpreter.run()
        y_tags = {o.tag for o in observations if o.variable == "y"}
        assert y_tags == {("call", "L1")}
