"""Parser/printer round-trip tests, including property-based coverage."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apk.generator import AppGenerator
from repro.ir.parser import (
    IRSyntaxError,
    parse_app,
    parse_expression,
    parse_signature,
    parse_statement,
)
from repro.ir.printer import print_app, print_method
from tests.conftest import DEMO_APP_SOURCE, TINY_PROFILE


class TestExpressionParsing:
    @pytest.mark.parametrize(
        "text,kind",
        [
            ("null", "NullExpr"),
            ("Exception", "ExceptionExpr"),
            ("new a.B", "NewExpr"),
            ("constclass a.B", "ConstClassExpr"),
            ('"hi"', "LiteralExpr"),
            ("42", "LiteralExpr"),
            ("3.25", "LiteralExpr"),
            ("true", "LiteralExpr"),
            ("(Ljava/lang/Object;) x", "CastExpr"),
            ("(a, b)", "TupleExpr"),
            ("cmpl(a, b)", "CmpExpr"),
            ("length(a)", "LengthExpr"),
            ("x instanceof Ljava/lang/Object;", "InstanceOfExpr"),
            ("@@a.B.g", "StaticFieldAccessExpr"),
            ("a[i]", "IndexingExpr"),
            ("o.f", "AccessExpr"),
            ("a + b", "BinaryExpr"),
            ("-x", "UnaryExpr"),
            ("x", "VariableNameExpr"),
            ("call a.B.m(I)V(x)", "CallRhs"),
        ],
    )
    def test_kinds(self, text, kind):
        assert parse_expression(text).kind == kind

    def test_expression_text_round_trip(self):
        for text in ("o.f", "a[i]", "@@a.B.g", "new a.B", "length(v)",
                     "cmp(a, b)", "(x, y)", "a >> b"):
            expr = parse_expression(text)
            assert parse_expression(expr.text()) == expr

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_expression("@@@nope!!")


class TestStatementParsing:
    @pytest.mark.parametrize(
        "text,kind",
        [
            ("nop", "EmptyStatement"),
            ("return", "ReturnStatement"),
            ("return v", "ReturnStatement"),
            ("throw e", "ThrowStatement"),
            ("monitorenter o", "MonitorStatement"),
            ("monitorexit o", "MonitorStatement"),
            ("goto L4", "GoToStatement"),
            ("if c then goto L4", "IfStatement"),
            ("switch v { case 0: goto L1; default: goto L2 }", "SwitchStatement"),
            ("call a.B.m()V()", "CallStatement"),
            ("call r := a.B.m()Ljava/lang/Object;(x)", "CallStatement"),
            ("x := new a.B", "AssignmentStatement"),
            ("x.f := y", "AssignmentStatement"),
            ("x[i] := y", "AssignmentStatement"),
            ("@@a.G.g := y", "AssignmentStatement"),
        ],
    )
    def test_kinds(self, text, kind):
        assert parse_statement("L0", text).kind == kind

    def test_statement_text_round_trip(self):
        for text in (
            "nop",
            "x := o.f",
            "x.f := y",
            "@@a.G.g := y",
            "switch v { case 0: goto L0; case 3: goto L0; default: goto L0 }",
            "call r := a.B.m(II)I(p, q)",
        ):
            stmt = parse_statement("L0", text)
            assert parse_statement("L0", stmt.text()) == stmt


class TestSignatureParsing:
    def test_simple(self):
        s = parse_signature("a.B.m(I)V")
        assert s.owner == "a.B" and s.name == "m"
        assert str(s) == "a.B.m(I)V"

    def test_object_params(self):
        s = parse_signature("x.Y.n(Ljava/lang/String;[I)Ljava/lang/Object;")
        assert len(s.param_types) == 2
        assert str(s) == "x.Y.n(Ljava/lang/String;[I)Ljava/lang/Object;"

    def test_malformed(self):
        with pytest.raises(ValueError):
            parse_signature("not-a-signature")


class TestAppRoundTrip:
    def test_demo_app(self):
        text = print_app(parse_app(DEMO_APP_SOURCE))
        assert print_app(parse_app(text)) == text

    def test_missing_header(self):
        with pytest.raises(IRSyntaxError, match="app"):
            parse_app("method a.B.m()V\nend\n")

    def test_error_carries_line_number(self):
        bad = "app p\nmethod a.B.m()V\n  L0: ?!garbage\nend\n"
        with pytest.raises(IRSyntaxError) as excinfo:
            parse_app(bad)
        assert excinfo.value.line_number == 3

    def test_unterminated_method(self):
        with pytest.raises(IRSyntaxError, match="unterminated"):
            parse_app("app p\nmethod a.B.m()V\n  L0: nop\n")

    def test_catch_clause_round_trip(self):
        source = (
            "app p\n"
            "method a.B.m()V\n"
            "  local o: Ljava/lang/Object;\n"
            "  catch L2 from L0 to L1\n"
            "  L0: o := new a.B\n"
            "  L1: nop\n"
            "  L2: o := Exception\n"
            "  L3: return\n"
            "end\n"
        )
        app = parse_app(source)
        method = app.method("a.B.m()V")
        assert len(method.handlers) == 1
        assert print_app(parse_app(print_app(app))) == print_app(app)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_generated_apps_round_trip(seed):
    """Property: every generator output survives print -> parse -> print."""
    app = AppGenerator(TINY_PROFILE).generate(seed)
    text = print_app(app)
    assert print_app(parse_app(text)) == text
