"""Derived performance-counter tests."""

import pytest

from repro.core.config import GDroidConfig
from repro.core.engine import AppWorkload, GDroid
from repro.gpu.counters import kernel_counters, run_counters
from repro.gpu.kernel import BlockCost, schedule_blocks
from tests.conftest import tiny_app


@pytest.fixture(scope="module")
def priced_pair():
    workload = AppWorkload.build(tiny_app(17))
    plain = GDroid(GDroidConfig.plain()).price(workload)
    full = GDroid(GDroidConfig.all_optimizations()).price(workload)
    return plain, full


class TestKernelCounters:
    def test_occupancy_bounds(self, priced_pair):
        for result in priced_pair:
            for kernel in result.kernels:
                counters = kernel_counters(kernel)
                assert 0.0 <= counters.achieved_occupancy <= 1.0
                assert 0.0 <= counters.simd_efficiency <= 1.0

    def test_bottleneck_mix_normalized(self, priced_pair):
        plain, _ = priced_pair
        counters = run_counters(plain.kernels)
        assert sum(counters.bottleneck_mix.values()) == pytest.approx(1.0)

    def test_plain_dominated_by_allocation(self, priced_pair):
        plain, _ = priced_pair
        counters = run_counters(plain.kernels)
        assert counters.dominant_bottleneck() == "alloc_stall_cycles"

    def test_gdroid_is_not_allocation_bound(self, priced_pair):
        _, full = priced_pair
        counters = run_counters(full.kernels)
        assert counters.bottleneck_mix.get("alloc_stall_cycles", 0.0) == 0.0

    def test_gdroid_throughput_beats_plain(self, priced_pair):
        plain, full = priced_pair
        plain_counters = run_counters(plain.kernels)
        full_counters = run_counters(full.kernels)
        assert (
            full_counters.visits_per_kcycle > plain_counters.visits_per_kcycle
        )

    def test_empty_run(self):
        counters = run_counters([])
        assert counters.achieved_occupancy == 0.0
        assert counters.bottleneck_mix == {}

    def test_single_block_occupancy_is_low(self):
        kernel = schedule_blocks(
            [BlockCost(block_id=0, cycles=100.0, iterations=1, node_visits=10)]
        )
        counters = kernel_counters(kernel)
        # One busy slot out of 120.
        assert counters.achieved_occupancy < 0.05
