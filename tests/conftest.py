"""Shared fixtures: hand-built apps and scaled-down generator profiles."""

from __future__ import annotations

import pytest

from repro.apk.generator import AppGenerator, GeneratorProfile
from repro.ir.parser import parse_app

#: A tiny, fully hand-written app exercising loops, heap flow, globals,
#: calls (internal + external), and a genuine taint leak.
DEMO_APP_SOURCE = """
app com.demo category tools
global com.demo.G.gCache: Ljava/lang/Object;
component com.demo.Main activity exported
  filter android.intent.action.MAIN
  callback onCreate com.demo.Main.onCreate(Landroid/content/Intent;)V
end
method com.demo.Main.onCreate(Landroid/content/Intent;)V
  param intent: Landroid/content/Intent;
  local obj: Ljava/lang/Object;
  local tmp: Ljava/lang/Object;
  local i: I
  L0: obj := new java.lang.Object
  L1: obj.f := intent
  L2: tmp := obj.f
  L3: @@com.demo.G.gCache := tmp
  L4: call tmp := com.demo.Main.helper(Ljava/lang/Object;)Ljava/lang/Object;(obj)
  L5: if i then goto L0
  L6: return
end
method com.demo.Main.helper(Ljava/lang/Object;)Ljava/lang/Object;
  param o: Ljava/lang/Object;
  local r: Ljava/lang/Object;
  L0: r := o.f
  L1: return r
end
"""

#: A hand-written app with a direct source -> sink leak.
LEAKY_APP_SOURCE = """
app com.leaky category spyware
component com.leaky.Main activity exported
  callback onCreate com.leaky.Main.leak()V
end
method com.leaky.Main.leak()V
  local id: Ljava/lang/String;
  local box: Ljava/lang/Object;
  local out: Ljava/lang/String;
  L0: call id := android.telephony.TelephonyManager.getDeviceId()Ljava/lang/String;()
  L1: box := new java.lang.Object
  L2: box.fData := id
  L3: out := box.fData
  L4: call android.telephony.SmsManager.sendTextMessage(Ljava/lang/String;Ljava/lang/String;)V(out, id)
  L5: return
end
method com.leaky.Main.clean()V
  local s: Ljava/lang/String;
  L0: s := "hello"
  L1: call android.util.Log.d(Ljava/lang/String;Ljava/lang/String;)I(s, s)
  L2: return
end
"""


@pytest.fixture
def demo_app():
    return parse_app(DEMO_APP_SOURCE)


@pytest.fixture
def leaky_app():
    return parse_app(LEAKY_APP_SOURCE)


#: Small generator profile: full statement diversity, quick fixpoints.
TINY_PROFILE = GeneratorProfile(scale=0.06, layers_low=2, layers_high=4)
SMALL_PROFILE = GeneratorProfile(scale=0.15, layers_low=3, layers_high=5)


@pytest.fixture
def tiny_generator():
    return AppGenerator(TINY_PROFILE)


@pytest.fixture
def small_generator():
    return AppGenerator(SMALL_PROFILE)


def tiny_app(seed: int):
    """Module-level helper for parametrized/property tests."""
    return AppGenerator(TINY_PROFILE).generate(seed)
