"""Fixed-point order-independence: the property MER's soundness rests on.

"Since the worklist algorithm is insensitive to the node processing
order, the MER will not affect the final results" (paper Section IV-C).
We verify the stronger statement: *any* processing schedule that
eventually processes every pending node converges to the same least
fixed point.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.intra import build_intra_cfg
from repro.dataflow.facts import FactSpace
from repro.dataflow.transfer import TransferFunctions
from repro.dataflow.worklist import SequentialWorklist
from tests.conftest import tiny_app


def randomized_fixpoint(method, seed: int):
    """A chaos-monkey worklist: random processing order, random batch
    sizes, duplicate tolerance -- only fairness is guaranteed."""
    rng = random.Random(seed)
    cfg = build_intra_cfg(method)
    space = FactSpace(method)
    transfer = TransferFunctions(space)
    count = len(method.statements)
    if count == 0:
        return []
    facts = [set() for _ in range(count)]
    facts[0] = set(space.entry_facts())
    visited = [False] * count
    pending = [0]
    while pending:
        rng.shuffle(pending)
        batch = pending[: rng.randint(1, len(pending))]
        rest = pending[len(batch):]
        next_pending = set(rest)
        for node in batch:
            visited[node] = True
            out = transfer.out_facts(node, facts[node])
            for successor in cfg.successors[node]:
                before = len(facts[successor])
                facts[successor] |= out
                if len(facts[successor]) > before or not visited[successor]:
                    next_pending.add(successor)
        pending = list(next_pending)
    return facts


@settings(max_examples=6, deadline=None)
@given(
    app_seed=st.integers(min_value=0, max_value=150),
    order_seed=st.integers(min_value=0, max_value=10_000),
)
def test_any_fair_schedule_reaches_the_same_fixed_point(app_seed, order_seed):
    app = tiny_app(app_seed)
    # Pick the largest leaf method (no *internal* callees) so no
    # summaries are needed.  API callees are fine -- their effects are
    # built into the transfer functions -- and some seeds generate
    # apps where every method makes at least one API call, so
    # filtering on ``not m.callees()`` would leave no candidates.
    internal = {str(m.signature) for m in app.methods}
    candidates = [
        m
        for m in app.methods
        if not any(callee in internal for callee in m.callees())
    ]
    method = max(candidates, key=len)
    reference = SequentialWorklist(method).run()
    chaotic = randomized_fixpoint(method, order_seed)
    assert [frozenset(f) for f in chaotic] == list(reference.node_facts)


def test_two_different_chaos_seeds_agree(demo_app):
    method = demo_app.method(
        "com.demo.Main.helper(Ljava/lang/Object;)Ljava/lang/Object;"
    )
    a = randomized_fixpoint(method, 1)
    b = randomized_fixpoint(method, 2)
    assert a == b
