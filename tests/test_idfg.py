"""IDFG result-structure tests."""

import pytest

from repro.dataflow.idfg import IDFG, MethodFacts
from repro.dataflow.worklist import analyze_app_reference


class TestEquivalence:
    def test_self_equivalence(self, demo_app):
        idfg = analyze_app_reference(demo_app)
        assert idfg.equivalent_to(idfg)
        assert idfg.diff(idfg) == {}

    def test_detects_missing_method(self, demo_app):
        idfg = analyze_app_reference(demo_app)
        partial = IDFG(
            method_facts={
                k: v
                for i, (k, v) in enumerate(idfg.method_facts.items())
                if i > 0
            },
            summaries=idfg.summaries,
        )
        assert not idfg.equivalent_to(partial)
        assert partial.methods() != idfg.methods()

    def test_detects_fact_difference(self, demo_app):
        idfg = analyze_app_reference(demo_app)
        signature = next(iter(idfg.method_facts))
        original = idfg.method_facts[signature]
        mutated_nodes = list(original.node_facts)
        mutated_nodes[0] = frozenset(set(mutated_nodes[0]) | {99_999})
        mutated = dict(idfg.method_facts)
        mutated[signature] = MethodFacts(
            space=original.space,
            node_facts=tuple(mutated_nodes),
            exit_facts=original.exit_facts,
        )
        other = IDFG(method_facts=mutated, summaries=idfg.summaries)
        assert not idfg.equivalent_to(other)
        assert idfg.diff(other)[signature] == (0,)

    def test_counts(self, demo_app):
        idfg = analyze_app_reference(demo_app)
        assert idfg.node_count() == sum(
            len(mf.node_facts) for mf in idfg.method_facts.values()
        )
        assert idfg.total_fact_count() == sum(
            mf.fact_count() for mf in idfg.method_facts.values()
        )

    def test_decoded_facts_are_named(self, demo_app):
        idfg = analyze_app_reference(demo_app)
        signature = "com.demo.Main.onCreate(Landroid/content/Intent;)V"
        facts = idfg.facts_of(signature)
        for slot, instance in facts.decoded(0):
            assert isinstance(slot, tuple) and isinstance(instance, tuple)
