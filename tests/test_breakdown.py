"""Cost-breakdown sanity: each configuration's cycles go where the
paper's bottleneck analysis says they should."""

import pytest

from repro.core.config import GDroidConfig
from repro.core.engine import AppWorkload, GDroid
from tests.conftest import tiny_app


@pytest.fixture(scope="module")
def workload():
    return AppWorkload.build(tiny_app(13))


def shares(result):
    # idle_lane_cycles is a diagnostic metric, not a charged cost.
    charged = {
        key: value
        for key, value in result.breakdown.items()
        if key != "idle_lane_cycles"
    }
    total = sum(charged.values()) or 1.0
    return {key: value / total for key, value in charged.items()}


class TestBreakdownShape:
    def test_plain_is_allocation_dominated(self, workload):
        """Bottleneck #1: dynamic allocation dominates the plain port."""
        result = GDroid(GDroidConfig.plain()).price(workload)
        assert shares(result)["alloc_stall_cycles"] > 0.5

    def test_mat_has_zero_allocation(self, workload):
        result = GDroid(GDroidConfig.mat_only()).price(workload)
        assert result.breakdown["alloc_stall_cycles"] == 0.0

    def test_mat_is_memory_and_issue_bound(self, workload):
        """After MAT, memory transactions + warp/sync overheads are the
        budget -- the surface GRP and MER then optimize."""
        result = GDroid(GDroidConfig.mat_only()).price(workload)
        mix = shares(result)
        assert mix["memory_cycles"] + mix["sync_cycles"] + mix["compute_cycles"] > 0.7

    def test_grp_trades_divergence_for_sort(self, workload):
        mat = GDroid(GDroidConfig.mat_only()).price(workload)
        grp = GDroid(GDroidConfig.mat_grp()).price(workload)
        assert grp.breakdown["divergence_cycles"] < mat.breakdown["divergence_cycles"]
        assert grp.breakdown["sort_cycles"] > 0.0
        assert mat.breakdown["sort_cycles"] == 0.0

    def test_mer_curbs_redundant_visits(self, workload):
        """MER deduplicates; on tiny apps the postponement can add a
        few revisits, so the bound is approximate."""
        grp = GDroid(GDroidConfig.mat_grp()).price(workload)
        full = GDroid(GDroidConfig.all_optimizations()).price(workload)
        assert full.visits <= grp.visits * 1.15

    def test_idle_lanes_tracked(self, workload):
        result = GDroid(GDroidConfig.mat_grp()).price(workload)
        assert result.breakdown["idle_lane_cycles"] >= 0.0
