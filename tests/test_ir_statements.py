"""Unit tests for the 9 statement categories and their helpers."""

import pytest

from repro.ir.expressions import (
    AccessExpr,
    CallRhs,
    IndexingExpr,
    NewExpr,
    StaticFieldAccessExpr,
    VariableNameExpr,
)
from repro.ir.statements import (
    AssignmentStatement,
    CallStatement,
    EmptyStatement,
    GotoStatement,
    IfStatement,
    MonitorStatement,
    ReturnStatement,
    STATEMENT_KINDS,
    SwitchStatement,
    ThrowStatement,
    branch_class,
    callee_of,
    heap_store_kind,
    is_call,
    may_throw,
)


def test_exactly_nine_statement_kinds():
    assert len(STATEMENT_KINDS) == 9
    assert len(set(STATEMENT_KINDS)) == 9


class TestControlFlow:
    def test_goto_never_falls_through(self):
        stmt = GotoStatement(label="L0", target="L5")
        assert not stmt.falls_through
        assert stmt.jump_targets() == ("L5",)

    def test_if_falls_through_and_jumps(self):
        stmt = IfStatement(label="L0", condition="c", target="L9")
        assert stmt.falls_through
        assert stmt.jump_targets() == ("L9",)
        assert stmt.uses() == ("c",)

    def test_return_terminates(self):
        assert not ReturnStatement(label="L0").falls_through
        assert ReturnStatement(label="L0", operand="v").uses() == ("v",)

    def test_throw_terminates(self):
        assert not ThrowStatement(label="L0", operand="e").falls_through

    def test_switch_with_default_never_falls_through(self):
        stmt = SwitchStatement(
            label="L0", operand="v", cases=((0, "L1"), (1, "L2")), default="L3"
        )
        assert not stmt.falls_through
        assert stmt.jump_targets() == ("L1", "L2", "L3")

    def test_switch_without_default_falls_through(self):
        stmt = SwitchStatement(label="L0", operand="v", cases=((0, "L1"),), default="")
        assert stmt.falls_through


class TestBranchClass:
    def test_non_assignment_uses_statement_kind(self):
        assert branch_class(EmptyStatement(label="L0")) == "EmptyStatement"
        assert branch_class(GotoStatement(label="L0", target="L0")) == "GoToStatement"

    def test_assignment_uses_expression_kind(self):
        stmt = AssignmentStatement(label="L0", lhs="x", rhs=NewExpr())
        assert branch_class(stmt) == "NewExpr"

    def test_total_class_count_is_25(self):
        from repro.core.grouping import BRANCH_CLASSES

        assert len(BRANCH_CLASSES) == 25


class TestHeapStores:
    def test_field_store(self):
        stmt = AssignmentStatement(
            label="L0",
            lhs="o",
            rhs=VariableNameExpr(name="v"),
            lhs_access=AccessExpr(base="o", field_name="f"),
        )
        assert stmt.is_heap_store
        assert heap_store_kind(stmt) == "field"
        assert stmt.defines() is None
        assert "o" in stmt.uses() and "v" in stmt.uses()

    def test_array_store(self):
        stmt = AssignmentStatement(
            label="L0",
            lhs="a",
            rhs=VariableNameExpr(name="v"),
            lhs_access=IndexingExpr(base="a", index="i"),
        )
        assert heap_store_kind(stmt) == "array"

    def test_static_store(self):
        stmt = AssignmentStatement(
            label="L0",
            lhs="G.f",
            rhs=VariableNameExpr(name="v"),
            lhs_access=StaticFieldAccessExpr(owner="G", field_name="f"),
        )
        assert heap_store_kind(stmt) == "static"

    def test_plain_assignment_is_not_a_store(self):
        stmt = AssignmentStatement(label="L0", lhs="x", rhs=NewExpr())
        assert heap_store_kind(stmt) is None
        assert stmt.defines() == "x"


class TestCalls:
    def test_call_statement(self):
        stmt = CallStatement(label="L0", callee="a.B.m()V", args=("x",), result="r")
        assert is_call(stmt)
        assert callee_of(stmt) == "a.B.m()V"
        assert stmt.defines() == "r"

    def test_call_rhs_assignment(self):
        stmt = AssignmentStatement(
            label="L0", lhs="r", rhs=CallRhs(callee="a.B.m()V", args=())
        )
        assert is_call(stmt)
        assert callee_of(stmt) == "a.B.m()V"

    def test_non_call(self):
        stmt = EmptyStatement(label="L0")
        assert not is_call(stmt)
        assert callee_of(stmt) is None


class TestMayThrow:
    def test_throwing_statements(self):
        assert may_throw(ThrowStatement(label="L0", operand="e"))
        assert may_throw(CallStatement(label="L0", callee="x", args=()))
        assert may_throw(MonitorStatement(label="L0", enter=True, operand="o"))
        assert may_throw(
            AssignmentStatement(label="L0", lhs="x", rhs=NewExpr())
        )
        assert may_throw(
            AssignmentStatement(
                label="L0", lhs="x", rhs=AccessExpr(base="o", field_name="f")
            )
        )
        assert may_throw(
            AssignmentStatement(
                label="L0",
                lhs="o",
                rhs=VariableNameExpr(name="v"),
                lhs_access=AccessExpr(base="o", field_name="f"),
            )
        )

    def test_safe_statements(self):
        assert not may_throw(EmptyStatement(label="L0"))
        assert not may_throw(GotoStatement(label="L0", target="L0"))
        assert not may_throw(
            AssignmentStatement(label="L0", lhs="x", rhs=VariableNameExpr(name="y"))
        )
        assert not may_throw(ReturnStatement(label="L0"))
