"""Dominator tree and natural-loop tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.dominators import DominatorTree, loop_nesting_depth, natural_loops
from repro.cfg.intra import build_intra_cfg
from repro.ir.parser import parse_app
from tests.conftest import tiny_app


def cfg_of(body: str, extra: str = ""):
    app = parse_app(f"app p\nmethod a.B.m()V\n{extra}{body}end\n")
    return build_intra_cfg(app.method("a.B.m()V"))


class TestDominatorTree:
    def test_straight_line(self):
        cfg = cfg_of("  L0: nop\n  L1: nop\n  L2: return\n")
        tree = DominatorTree(cfg)
        assert tree.idom == {0: 0, 1: 0, 2: 1}
        assert tree.dominates(0, 2)
        assert not tree.dominates(2, 0)

    def test_diamond_join_dominated_by_branch(self):
        cfg = cfg_of(
            "  local c: I\n"
            "  L0: if c then goto L2\n"
            "  L1: goto L3\n"
            "  L2: nop\n"
            "  L3: return\n"
        )
        tree = DominatorTree(cfg)
        assert tree.idom[3] == 0  # neither arm dominates the join
        assert tree.dominates(0, 3)
        assert not tree.dominates(1, 3)
        assert not tree.dominates(2, 3)

    def test_dominator_chain_ends_at_entry(self):
        cfg = cfg_of("  L0: nop\n  L1: nop\n  L2: return\n")
        tree = DominatorTree(cfg)
        assert tree.dominators_of(2) == (2, 1, 0)

    def test_unreachable_nodes_excluded(self):
        cfg = cfg_of("  L0: goto L2\n  L1: nop\n  L2: return\n")
        tree = DominatorTree(cfg)
        assert 1 not in tree.idom
        assert not tree.dominates(0, 1)


class TestNaturalLoops:
    def test_simple_loop(self):
        cfg = cfg_of(
            "  local c: I\n"
            "  L0: nop\n"
            "  L1: nop\n"
            "  L2: if c then goto L1\n"
            "  L3: return\n"
        )
        loops = natural_loops(cfg)
        assert len(loops) == 1
        assert loops[0].header == 1
        assert loops[0].body == frozenset({1, 2})

    def test_nested_loops(self):
        cfg = cfg_of(
            "  local c: I\n"
            "  L0: nop\n"
            "  L1: nop\n"
            "  L2: if c then goto L1\n"
            "  L3: if c then goto L0\n"
            "  L4: return\n"
        )
        depth = loop_nesting_depth(cfg)
        assert depth[1] == 2 and depth[2] == 2  # inner body
        assert depth[0] == 1 and depth[3] == 1  # outer only
        assert depth[4] == 0

    def test_acyclic_has_no_loops(self):
        cfg = cfg_of("  L0: nop\n  L1: return\n")
        assert natural_loops(cfg) == []


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=300))
def test_dominance_properties_on_random_methods(seed):
    """Entry dominates everything reachable; idom is a strict
    dominator; loop headers dominate their bodies."""
    app = tiny_app(seed)
    method = max(app.methods, key=len)
    cfg = build_intra_cfg(method)
    tree = DominatorTree(cfg)
    reachable = set(cfg.reachable_nodes())
    for node in reachable:
        assert tree.dominates(cfg.entry, node)
        if node != cfg.entry:
            assert tree.dominates(tree.idom[node], node)
            assert tree.idom[node] != node
    for loop in natural_loops(cfg):
        for node in loop.body:
            if node in reachable:
                assert tree.dominates(loop.header, node)
