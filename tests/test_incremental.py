"""Incremental SBDA tests: summary store, exactness, harness + serve wiring.

The load-bearing property is *bit-identity*: an incremental run seeded
from any store state must produce exactly the reference fixpoint --
equal node-fact sets, flows, and findings.  Everything else (reuse
counters, modeled speedups, serve counters, ledger rendering) is
accounting on top of that invariant.
"""

from __future__ import annotations

import json

from repro import obs
from repro.apk.corpus import AppCorpus
from repro.apk.diff import diff_apps
from repro.apk.generator import GeneratorProfile, generate_app, mutate_app
from repro.bench.harness import (
    IncrementalVetRow,
    evaluate_corpus,
    last_run_stats,
)
from repro.cfg.callgraph import CallGraph, SBDALayering
from repro.cfg.environment import app_with_environments
from repro.dataflow.fingerprint import (
    body_fingerprint,
    method_fingerprint,
    summary_fingerprint,
    summary_from_payload,
    summary_to_payload,
)
from repro.dataflow.incremental import (
    MethodSummaryStore,
    analyze_app_incremental,
    vet_incremental,
)
from repro.dataflow.worklist import analyze_app_reference, compute_summaries
from repro.obs.export import render_ledger, run_ledger
from repro.serve import JobState, ServeConfig, run_soak
from repro.serve.journal import row_from_payload, row_to_payload
from repro.vetting.report import vet_app

#: Small generator profile keeping these tests fast.
PROFILE = GeneratorProfile(scale=0.12)


def _app(seed: int = 7):
    return generate_app(seed, PROFILE)


# -- fingerprints and summary serialisation -----------------------------------


class TestFingerprints:
    def test_method_fingerprint_tracks_body_changes(self):
        app = _app()
        new, touched = mutate_app(app, seed=1, count=1)
        for signature in touched:
            assert method_fingerprint(
                app.method_table[signature]
            ) != method_fingerprint(new.method_table[signature])
        untouched = [
            method
            for method in app.methods
            if str(method.signature) not in touched
        ]
        for method in untouched:
            assert method_fingerprint(method) == method_fingerprint(
                new.method_table[str(method.signature)]
            )

    def test_body_fingerprint_ignores_the_signature_header(self):
        app = _app()
        method = app.methods[0]
        assert body_fingerprint(method) != method_fingerprint(method)

    def test_summary_payload_round_trips_exactly(self):
        app = app_with_environments(_app())
        summaries = compute_summaries(app, SBDALayering(CallGraph(app)))
        assert summaries
        for summary in summaries.values():
            payload = summary_to_payload(summary)
            # JSON-serializable and stable under a dump/load cycle.
            restored = summary_from_payload(
                json.loads(json.dumps(payload))
            )
            assert restored == summary
            assert summary_fingerprint(restored) == summary_fingerprint(
                summary
            )


# -- the summary store ---------------------------------------------------------


class TestMethodSummaryStore:
    def test_cold_then_warm(self, tmp_path):
        store = MethodSummaryStore(root=tmp_path / "s")
        app = _app()
        cold = analyze_app_incremental(app, store)
        assert cold.stats.methods_reused == 0
        assert cold.stats.scc_hits == 0
        assert store.stores == cold.stats.scc_misses
        warm = analyze_app_incremental(app, store)
        assert warm.stats.methods_reused == warm.stats.methods_total
        assert warm.stats.scc_misses == 0
        assert warm.stats.modeled_speedup > 10
        assert warm.idfg.equivalent_to(cold.idfg)

    def test_corrupt_entries_are_purged_not_trusted(self, tmp_path):
        store = MethodSummaryStore(root=tmp_path / "s")
        app = _app()
        analyze_app_incremental(app, store)
        for path in store.root.glob("*.json"):
            path.write_text("{not json")
        rerun = analyze_app_incremental(app, store)
        assert store.purged > 0
        assert rerun.stats.methods_reused == 0
        assert rerun.idfg.equivalent_to(analyze_app_reference(app))

    def test_disabled_store_writes_nothing(self, tmp_path):
        store = MethodSummaryStore(root=tmp_path / "s", enabled=False)
        result = analyze_app_incremental(_app(), store)
        assert result.stats.methods_reused == 0
        assert not (tmp_path / "s").exists()
        assert result.idfg.equivalent_to(analyze_app_reference(_app()))


# -- exactness under version bumps ---------------------------------------------


class TestIncrementalExactness:
    def test_bump_recomputes_only_dirty_sccs_bit_identically(self, tmp_path):
        store = MethodSummaryStore(root=tmp_path / "s")
        old = _app()
        new, touched = mutate_app(old, seed=5, count=2)
        assert len(touched) == 2
        analyze_app_incremental(old, store)
        result = analyze_app_incremental(new, store)
        assert result.stats.methods_recomputed >= len(touched)
        assert result.stats.methods_reused > 0
        assert result.idfg.equivalent_to(analyze_app_reference(new))

    def test_vet_incremental_matches_cold_vet(self, tmp_path):
        store = MethodSummaryStore(root=tmp_path / "s")
        old = _app()
        new, _ = mutate_app(old, seed=9, count=1)
        report, stats = vet_incremental(new, old, store)
        cold = vet_app(new)
        assert report.flows == cold.flows
        assert report.icc_flows == cold.icc_flows
        assert report.linked_flows == cold.linked_flows
        assert report.risk_score == cold.risk_score
        assert report.verdict == cold.verdict
        assert stats.methods_reused > 0

    def test_store_state_never_changes_results(self, tmp_path):
        # Property sweep: whatever mix of hits the store serves, the
        # fixpoint equals the reference.  Apps share the store on
        # purpose -- cross-app collisions must be impossible.
        store = MethodSummaryStore(root=tmp_path / "s")
        for seed in (3, 4, 5):
            app = generate_app(seed, PROFILE)
            result = analyze_app_incremental(app, store)
            assert result.idfg.equivalent_to(analyze_app_reference(app))


# -- the version-bump mutator --------------------------------------------------


class TestMutateApp:
    def test_deterministic_and_counted(self):
        app = _app()
        first, touched_a = mutate_app(app, seed=2, count=3)
        second, touched_b = mutate_app(app, seed=2, count=3)
        assert touched_a == touched_b
        assert len(touched_a) == 3
        assert first.package == app.package
        assert [str(m.signature) for m in first.methods] == [
            str(m.signature) for m in second.methods
        ]

    def test_diff_sees_exactly_the_touched_methods(self):
        app = _app()
        new, touched = mutate_app(app, seed=11, count=2)
        diff = diff_apps(app, new)
        assert sorted(diff.modified) == sorted(touched)
        assert not diff.added and not diff.removed
        assert diff.dirty_count == 2


# -- harness integration -------------------------------------------------------


class TestHarnessBaseline:
    def test_evaluate_corpus_with_baseline(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        corpus = AppCorpus(size=3, base_seed=710100, profile=PROFILE)
        rows = evaluate_corpus(corpus, baseline=corpus)
        assert len(rows) == 3
        for index, row in enumerate(rows):
            assert isinstance(row, IncrementalVetRow)
            assert row.index == index
            # Resubmission: the baseline run seeded every SCC.
            assert row.methods_reused == row.methods_total
            assert row.modeled_speedup > 10
            cold = vet_app(corpus.app(index))
            assert row.verdict == cold.verdict
            assert row.risk_score == cold.risk_score
            assert row.flow_count == len(cold.flows)
        stats = last_run_stats()
        assert stats is not None
        assert stats.summary_hits > 0
        assert "incremental" in stats.summary()

    def test_run_stats_render_in_the_ledger(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        corpus = AppCorpus(size=2, base_seed=710200, profile=PROFILE)
        tracer = obs.Tracer()
        obs.activate(tracer)
        try:
            evaluate_corpus(corpus, baseline=corpus)
        finally:
            obs.deactivate()
        ledger = run_ledger(tracer, run_stats=last_run_stats())
        assert (
            ledger["counters"]["corpus.incremental.summary_hits"] > 0
        )
        text = render_ledger(ledger)
        assert "run stats:" in text
        assert "summary_hits" in text


# -- serve integration ---------------------------------------------------------


class TestServeBaseline:
    def test_soak_with_corpus_baseline_counts_hits(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        corpus = AppCorpus(size=4, base_seed=710300, profile=PROFILE)
        report = run_soak(
            corpus, config=ServeConfig(workers=2), baseline="corpus"
        )
        assert report.ok and report.failed == 0
        assert report.counters["serve.incremental.jobs"] == 4
        assert report.counters["serve.incremental.hits"] > 0
        assert report.counters["serve.incremental.reused_methods"] > 0
        for job in report.jobs:
            assert job.state == JobState.DONE
            assert job.baseline == "corpus"
            assert isinstance(job.row, IncrementalVetRow)
            assert job.verdict is not None
            # Modeled latency is undefined for an incremental re-vet.
            assert job.modeled_latency_s is None

    def test_soak_with_gdx_baseline_path(self, tmp_path, monkeypatch):
        from repro.apk.loader import save_gdx

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        corpus = AppCorpus(size=2, base_seed=710400, profile=PROFILE)
        baseline_path = tmp_path / "base.gdx"
        save_gdx(corpus.app(0), baseline_path)
        report = run_soak(
            corpus,
            config=ServeConfig(workers=1),
            baseline=str(baseline_path),
        )
        assert report.ok and report.failed == 0
        assert report.counters["serve.incremental.jobs"] == 2

    def test_corrupt_baseline_fails_structurally(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        bad = tmp_path / "bad.gdx"
        bad.write_bytes(b"not a container")
        corpus = AppCorpus(size=2, base_seed=710500, profile=PROFILE)
        report = run_soak(
            corpus, config=ServeConfig(workers=1), baseline=str(bad)
        )
        assert report.ok
        assert report.completed == 0 and report.failed == 2
        for job in report.jobs:
            assert job.state == JobState.FAILED
            assert "baseline" in (job.error or "")

    def test_incremental_row_round_trips_through_the_journal(self):
        row = IncrementalVetRow(
            package="com.a",
            category="games",
            index=0,
            methods_total=10,
            methods_reused=9,
            methods_recomputed=1,
            visits_cold=1000.0,
            visits_incremental=50.0,
            modeled_speedup=20.0,
            verdict="clean",
            risk_score=0,
            flow_count=0,
            finding_count=0,
        )
        payload = json.loads(json.dumps(row_to_payload(row)))
        assert row_from_payload(payload) == row

    def test_pooled_serve_carries_incremental_counters(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        corpus = AppCorpus(size=3, base_seed=710600, profile=PROFILE)
        report = run_soak(
            corpus,
            config=ServeConfig(workers=2, pool="process"),
            baseline="corpus",
        )
        assert report.ok and report.failed == 0
        assert report.counters["serve.incremental.jobs"] == 3
        assert report.counters["serve.incremental.hits"] > 0
        for job in report.jobs:
            assert isinstance(job.row, IncrementalVetRow)
