"""Set-based vs matrix-based fact stores, including equivalence property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.lattice import (
    BYTES_PER_ENTRY,
    GROWTH_FACTOR,
    INITIAL_CAPACITY,
    SET_HEADER_BYTES,
    SetFactStore,
)
from repro.dataflow.matrix_store import BooleanMatrixStore, MatrixFactStore


class TestSetFactStore:
    def test_insert_reports_growth(self):
        store = SetFactStore(2)
        assert store.insert_all(0, [1, 2])
        assert not store.insert_all(0, [1, 2])
        assert store.insert_all(0, [3])
        assert store.get(0) == {1, 2, 3}

    def test_capacity_doubles_and_counts_allocs(self):
        store = SetFactStore(1)
        store.insert_all(0, range(INITIAL_CAPACITY + 1))
        assert store.alloc_events == 1
        assert store.capacity(0) == INITIAL_CAPACITY * GROWTH_FACTOR
        store.insert_all(0, range(100))
        assert store.capacity(0) >= 100
        assert store.grow_counts[0] == store.alloc_events

    def test_replace_resets_contents(self):
        store = SetFactStore(1)
        store.insert_all(0, [1, 2, 3])
        store.replace(0, [9])
        assert store.get(0) == {9}

    def test_memory_accounting(self):
        store = SetFactStore(3)
        expected = 3 * SET_HEADER_BYTES + 3 * INITIAL_CAPACITY * BYTES_PER_ENTRY
        assert store.memory_bytes() == expected
        store.insert_all(0, range(INITIAL_CAPACITY * 4))
        assert store.memory_bytes() > expected

    def test_snapshot_is_immutable_copy(self):
        store = SetFactStore(1)
        store.insert_all(0, [1])
        snap = store.snapshot()
        store.insert_all(0, [2])
        assert snap[0] == frozenset({1})

    def test_equality(self):
        a, b = SetFactStore(1), SetFactStore(1)
        a.insert_all(0, [1])
        b.insert_all(0, [1])
        assert a == b


class TestMatrixFactStore:
    def test_insert_reports_new_bits(self):
        store = MatrixFactStore(2, 10)
        assert store.insert_all(0, [3, 4])
        assert not store.insert_all(0, [3])
        assert store.insert_all(0, [3, 5])
        assert store.get(0) == {3, 4, 5}

    def test_empty_insert_is_noop(self):
        store = MatrixFactStore(1, 10)
        assert not store.insert_all(0, [])

    def test_contains_and_size(self):
        store = MatrixFactStore(1, 10)
        store.insert_all(0, [7])
        assert store.contains(0, 7)
        assert not store.contains(0, 6)
        assert store.size(0) == 1

    def test_memory_is_bit_packed(self):
        # 16 statements, 100 cells: 2 bytes per cell.
        store = MatrixFactStore(16, 100)
        assert store.memory_bytes() == 100 * 2
        # 8 or fewer statements: 1 byte per cell.
        assert MatrixFactStore(8, 100).memory_bytes() == 100

    def test_replace(self):
        store = MatrixFactStore(1, 10)
        store.insert_all(0, [1, 2])
        store.replace(0, [5])
        assert store.get(0) == {5}


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),  # node
            st.lists(st.integers(min_value=0, max_value=29), max_size=8),
        ),
        max_size=30,
    )
)
def test_stores_equivalent_under_any_op_sequence(ops):
    """Property: all three stores expose identical fact sets and flags.

    This is the functional heart of the MAT optimization: swapping the
    data structure -- dynamic sets, the seed's boolean matrix, or the
    packed uint64 bitset matrix -- must never change the analysis
    outcome.
    """
    set_store = SetFactStore(5)
    mat_store = MatrixFactStore(5, 30)
    bool_store = BooleanMatrixStore(5, 30)
    for node, facts in ops:
        grew_set = set_store.insert_all(node, facts)
        grew_mat = mat_store.insert_all(node, facts)
        grew_bool = bool_store.insert_all(node, facts)
        assert grew_set == grew_mat == grew_bool
    assert set_store.snapshot() == mat_store.snapshot()
    assert mat_store.snapshot() == bool_store.snapshot()
    assert set_store.total_fact_count() == mat_store.total_fact_count()
    assert mat_store.total_fact_count() == bool_store.total_fact_count()
    assert mat_store.memory_bytes() == bool_store.memory_bytes()
