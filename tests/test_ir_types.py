"""Unit tests for the IR type system."""

import pytest

from repro.ir.types import (
    ArrayType,
    INT,
    ObjectType,
    PRIMITIVE_NAMES,
    PrimitiveType,
    STRING,
    VOID,
    parse_descriptor,
    primitive,
)


class TestPrimitiveType:
    def test_all_nine_primitives_exist(self):
        assert len(PRIMITIVE_NAMES) == 9
        for name in PRIMITIVE_NAMES:
            assert primitive(name).name == name

    def test_unknown_primitive_rejected(self):
        with pytest.raises(ValueError, match="unknown primitive"):
            PrimitiveType("quux")

    def test_descriptor(self):
        assert INT.descriptor() == "I"
        assert VOID.descriptor() == "V"
        assert primitive("boolean").descriptor() == "Z"
        assert primitive("long").descriptor() == "J"

    def test_not_object(self):
        assert not INT.is_object

    def test_interning(self):
        assert primitive("int") is primitive("int")


class TestObjectType:
    def test_descriptor_uses_slashes(self):
        assert STRING.descriptor() == "Ljava/lang/String;"

    def test_is_object(self):
        assert STRING.is_object

    def test_simple_name(self):
        assert STRING.simple_name == "String"
        assert ObjectType("Toplevel").simple_name == "Toplevel"

    def test_equality_is_structural(self):
        assert ObjectType("a.B") == ObjectType("a.B")
        assert ObjectType("a.B") != ObjectType("a.C")


class TestArrayType:
    def test_descriptor(self):
        assert ArrayType(INT).descriptor() == "[I"
        assert ArrayType(STRING).descriptor() == "[Ljava/lang/String;"

    def test_nested_dimensions(self):
        assert ArrayType(ArrayType(INT)).dimensions == 2
        assert ArrayType(INT).dimensions == 1

    def test_arrays_are_heap_objects(self):
        assert ArrayType(INT).is_object


class TestParseDescriptor:
    def test_primitives(self):
        for name in PRIMITIVE_NAMES:
            t = primitive(name)
            assert parse_descriptor(t.descriptor()) == t

    def test_object(self):
        assert parse_descriptor("Ljava/lang/String;") == STRING

    def test_array(self):
        assert parse_descriptor("[[I") == ArrayType(ArrayType(INT))

    def test_round_trip_everything(self):
        for descriptor in ("I", "V", "Lx.y.Z;".replace(".", "/"), "[J", "[[Lcom/a/B;"):
            assert parse_descriptor(descriptor).descriptor() == descriptor

    @pytest.mark.parametrize("bad", ["", "Q", "Lfoo", "[", "II"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_descriptor(bad)
