"""Container robustness: corrupted inputs fail cleanly, never crash.

A vetting queue ingests untrusted bytes; both container formats must
reject malformed input with their documented error types (and never
with, say, a struct.error or unbounded allocation from a hostile
length prefix reaching the parser)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apk.bytecode import BytecodeError
from repro.apk.dex import GdxFormatError, pack_app
from repro.apk.dex import unpack_app
from repro.apk.dex2 import pack_app_v2
from repro.ir.parser import IRSyntaxError
from tests.conftest import tiny_app

#: The error types the loaders are allowed to raise on bad input.
ACCEPTABLE = (GdxFormatError, BytecodeError, IRSyntaxError, ValueError, MemoryError)


@pytest.fixture(scope="module")
def blobs():
    app = tiny_app(3)
    return pack_app(app), pack_app_v2(app)


class TestTruncation:
    @pytest.mark.parametrize("fraction", [0.1, 0.5, 0.9, 0.99])
    def test_truncated_v1(self, blobs, fraction):
        v1, _ = blobs
        with pytest.raises(ACCEPTABLE):
            unpack_app(v1[: int(len(v1) * fraction)])

    @pytest.mark.parametrize("fraction", [0.1, 0.5, 0.9, 0.99])
    def test_truncated_v2(self, blobs, fraction):
        _, v2 = blobs
        with pytest.raises(ACCEPTABLE):
            unpack_app(v2[: int(len(v2) * fraction)])


class TestCorruption:
    @settings(max_examples=40, deadline=None)
    @given(
        offset_fraction=st.floats(min_value=0.0, max_value=0.999),
        value=st.integers(min_value=0, max_value=255),
        which=st.sampled_from(["v1", "v2"]),
    )
    def test_single_byte_flips(self, blobs, offset_fraction, value, which):
        """Property: one flipped byte either still parses (benign spot,
        e.g. inside a string) or raises a documented error type."""
        blob = bytearray(blobs[0] if which == "v1" else blobs[1])
        offset = int(len(blob) * offset_fraction)
        blob[offset] = value
        try:
            unpack_app(bytes(blob))
        except ACCEPTABLE:
            pass  # clean rejection

    def test_empty_input(self):
        with pytest.raises(ACCEPTABLE):
            unpack_app(b"")

    def test_random_garbage(self):
        with pytest.raises(ACCEPTABLE):
            unpack_app(b"\x00" * 64)
