"""``.gdx`` container differ edge cases and the CLI baseline surface.

Satellite coverage for the incremental pipeline's operator-facing
half: identical containers, removed components, renamed-but-identical
bodies (body-fingerprint pairing), and corrupt baselines surfacing as
structured errors with exit code 2.
"""

from __future__ import annotations

import json

import pytest

from repro.apk.diff import BaselineError, diff_apps, load_baseline
from repro.apk.generator import GeneratorProfile, generate_app, mutate_app
from repro.apk.loader import save_gdx
from repro.cli import main
from repro.ir.parser import parse_app

PROFILE = GeneratorProfile(scale=0.1)

OLD_SOURCE = """
app com.diff category tools
component com.diff.Main activity exported
  callback onCreate com.diff.Main.run()V
end
component com.diff.Extra service
  callback onStart com.diff.Main.run()V
end
method com.diff.Main.run()V
  local s: Ljava/lang/String;
  L0: s := "hello"
  L1: return
end
method com.diff.Main.helper()V
  local i: I
  L0: i := 1
  L1: return
end
"""

#: Version 2: ``Extra`` component dropped, ``helper`` renamed to
#: ``helper2`` with a byte-identical body, ``run`` untouched.
NEW_SOURCE = """
app com.diff category tools
component com.diff.Main activity exported
  callback onCreate com.diff.Main.run()V
end
method com.diff.Main.run()V
  local s: Ljava/lang/String;
  L0: s := "hello"
  L1: return
end
method com.diff.Main.helper2()V
  local i: I
  L0: i := 1
  L1: return
end
"""


class TestDiffApps:
    def test_identical_containers(self):
        app = generate_app(7, PROFILE)
        again = generate_app(7, PROFILE)
        diff = diff_apps(app, again)
        assert diff.is_identical
        assert diff.dirty_count == 0
        assert len(diff.unchanged) == len(app.methods)
        assert not diff.renamed
        assert "0 modified" in diff.summary()

    def test_mutation_classifies_as_modified(self):
        app = generate_app(7, PROFILE)
        new, touched = mutate_app(app, seed=4, count=1)
        diff = diff_apps(app, new)
        assert not diff.is_identical
        assert diff.modified == tuple(sorted(touched))
        assert diff.dirty_count == 1

    def test_removed_component_and_rename_detection(self):
        old = parse_app(OLD_SOURCE)
        new = parse_app(NEW_SOURCE)
        diff = diff_apps(old, new)
        assert diff.components_removed == ("com.diff.Extra",)
        assert not diff.components_added
        # The rename is surfaced as a body-fingerprint pair *and*
        # still counts as added+removed for re-analysis purposes.
        assert diff.renamed == (
            ("com.diff.Main.helper()V", "com.diff.Main.helper2()V"),
        )
        assert diff.added == ("com.diff.Main.helper2()V",)
        assert diff.removed == ("com.diff.Main.helper()V",)
        assert not diff.is_identical
        assert "1 renamed" in diff.summary()
        assert "components +0/-1" in diff.summary()

    def test_to_json_is_serializable_and_complete(self):
        old = parse_app(OLD_SOURCE)
        new = parse_app(NEW_SOURCE)
        document = json.loads(json.dumps(diff_apps(old, new).to_json()))
        assert document["old_package"] == "com.diff"
        assert document["renamed"] == [
            ["com.diff.Main.helper()V", "com.diff.Main.helper2()V"]
        ]
        assert document["components_removed"] == ["com.diff.Extra"]


class TestLoadBaseline:
    def test_missing_file_raises_structured_error(self, tmp_path):
        with pytest.raises(BaselineError) as excinfo:
            load_baseline(tmp_path / "absent.gdx")
        assert "unreadable" in str(excinfo.value)
        assert excinfo.value.path.endswith("absent.gdx")

    def test_corrupt_container_raises_structured_error(self, tmp_path):
        bad = tmp_path / "bad.gdx"
        bad.write_bytes(b"\x00\x01 definitely not a gdx container")
        with pytest.raises(BaselineError) as excinfo:
            load_baseline(bad)
        assert "corrupt container" in str(excinfo.value)


class TestCliBaseline:
    @pytest.fixture()
    def app_gdx(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        path = tmp_path / "app.gdx"
        save_gdx(generate_app(7, PROFILE), path)
        return path

    def test_corrupt_baseline_exits_2(self, tmp_path, app_gdx, capsys):
        bad = tmp_path / "bad.gdx"
        bad.write_bytes(b"garbage")
        code = main(["vet", str(app_gdx), "--baseline", str(bad)])
        assert code == 2
        assert "corrupt container" in capsys.readouterr().err

    def test_missing_baseline_exits_2(self, tmp_path, app_gdx, capsys):
        code = main(
            ["vet", str(app_gdx), "--baseline", str(tmp_path / "no.gdx")]
        )
        assert code == 2
        assert "unreadable" in capsys.readouterr().err

    def test_baseline_conflicts_with_targets(
        self, tmp_path, app_gdx, capsys
    ):
        code = main(
            [
                "vet",
                str(app_gdx),
                "--baseline",
                str(app_gdx),
                "--targets",
                "SMS",
            ]
        )
        assert code == 2
        assert "--baseline" in capsys.readouterr().err

    def test_self_baseline_reuses_everything(self, app_gdx, capsys):
        code = main(
            ["vet", str(app_gdx), "--baseline", str(app_gdx)]
        )
        output = capsys.readouterr().out
        assert code in (0, 2)  # suspicious apps legitimately exit 2
        assert "diff vs baseline" in output
        assert "0 modified" in output
        assert "incremental:" in output

    def test_generate_mutate_from_writes_a_bumped_container(
        self, tmp_path, app_gdx, capsys
    ):
        out = tmp_path / "bumped.gdx"
        code = main(
            [
                "generate",
                "--mutate-from",
                str(app_gdx),
                "--mutate-methods",
                "2",
                "--mutate-seed",
                "5",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "mutated 2/" in output
        baseline = load_baseline(app_gdx)
        bumped = load_baseline(out)
        assert diff_apps(baseline, bumped).dirty_count == 2
