"""The benchmark baseline recorder/comparator (``tools/bench_baseline.py``)."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.apk.corpus import AppCorpus
from repro.bench.harness import evaluate_corpus, last_run_stats
from tests.conftest import TINY_PROFILE

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
import bench_baseline  # noqa: E402


def _metrics(seed: int = 881000):
    corpus = AppCorpus(size=2, base_seed=seed, profile=TINY_PROFILE)
    rows = evaluate_corpus(corpus, no_cache=True)
    return bench_baseline.collect_metrics(rows, last_run_stats())


class TestCollectMetrics:
    def test_every_gating_metric_present(self):
        collected = _metrics()
        assert set(collected["metrics"]) == set(bench_baseline.METRICS)
        assert all(value > 0 for value in collected["metrics"].values())
        assert set(collected["informational"]) == set(
            bench_baseline.INFORMATIONAL
        )

    def test_no_rows_is_an_error(self):
        with pytest.raises(ValueError):
            bench_baseline.collect_metrics([], None)


class TestComparator:
    BASE = {"gdroid_speedup": 50.0, "full_s": 0.001}

    def test_identical_metrics_pass(self):
        comparison = bench_baseline.compare_metrics(
            self.BASE, dict(self.BASE), tolerance=0.02
        )
        assert comparison.ok
        assert comparison.regressions == []
        assert comparison.improvements == []

    def test_speedup_drop_beyond_tolerance_regresses(self):
        current = dict(self.BASE, gdroid_speedup=45.0)  # -10%
        comparison = bench_baseline.compare_metrics(self.BASE, current, 0.02)
        assert not comparison.ok
        assert [d.metric for d in comparison.regressions] == ["gdroid_speedup"]
        assert comparison.regressions[0].relative == pytest.approx(-0.1)

    def test_modeled_time_increase_regresses(self):
        current = dict(self.BASE, full_s=0.0011)  # +10%, "lower is better"
        comparison = bench_baseline.compare_metrics(self.BASE, current, 0.02)
        assert [d.metric for d in comparison.regressions] == ["full_s"]

    def test_drift_within_tolerance_passes(self):
        current = dict(self.BASE, gdroid_speedup=49.5, full_s=0.00101)  # ~1%
        assert bench_baseline.compare_metrics(self.BASE, current, 0.02).ok

    def test_good_direction_drift_is_improvement_not_failure(self):
        current = dict(self.BASE, gdroid_speedup=60.0, full_s=0.0005)
        comparison = bench_baseline.compare_metrics(self.BASE, current, 0.02)
        assert comparison.ok
        assert {d.metric for d in comparison.improvements} == {
            "gdroid_speedup",
            "full_s",
        }

    def test_tolerance_is_the_knob(self):
        current = dict(self.BASE, gdroid_speedup=47.5)  # -5%
        assert not bench_baseline.compare_metrics(self.BASE, current, 0.02).ok
        assert bench_baseline.compare_metrics(self.BASE, current, 0.10).ok

    def test_unknown_metrics_are_ignored(self):
        comparison = bench_baseline.compare_metrics(
            {"gdroid_speedup": 50.0, "mystery": 1.0},
            {"gdroid_speedup": 50.0, "apps_per_second": 3.0},
            0.02,
        )
        assert [d.metric for d in comparison.deltas] == ["gdroid_speedup"]


class TestCommandLine:
    def _record(self, tmp_path, monkeypatch, seed=881100):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        out = tmp_path / "BENCH_baseline.json"
        code = bench_baseline.main(
            [
                "record",
                "--apps", "2",
                "--scale", "0.06",
                "--out", str(out),
            ]
        )
        assert code == 0
        return out

    def test_record_then_compare_round_trip(self, tmp_path, monkeypatch):
        out = self._record(tmp_path, monkeypatch)
        baseline = json.loads(out.read_text())
        assert baseline["schema"] == bench_baseline.BASELINE_SCHEMA
        assert baseline["corpus"] == {"apps": 2, "scale": 0.06}
        # Modeled metrics are deterministic: a re-run compares clean.
        assert bench_baseline.main(["compare", "--baseline", str(out)]) == 0

    def test_injected_regression_exits_nonzero(self, tmp_path, monkeypatch):
        out = self._record(tmp_path, monkeypatch)
        baseline = json.loads(out.read_text())
        # Pretend the recorded run was 25% faster than reality.
        baseline["metrics"]["gdroid_speedup"] *= 1.25
        out.write_text(json.dumps(baseline))
        assert bench_baseline.main(["compare", "--baseline", str(out)]) == 1

    def test_injected_regression_within_tolerance_passes(
        self, tmp_path, monkeypatch
    ):
        out = self._record(tmp_path, monkeypatch)
        baseline = json.loads(out.read_text())
        baseline["metrics"]["gdroid_speedup"] *= 1.25
        out.write_text(json.dumps(baseline))
        code = bench_baseline.main(
            ["compare", "--baseline", str(out), "--tolerance", "0.5"]
        )
        assert code == 0

    def test_missing_baseline_is_usage_error(self, tmp_path):
        code = bench_baseline.main(
            ["compare", "--baseline", str(tmp_path / "absent.json")]
        )
        assert code == 2

    def test_compare_json_report(self, tmp_path, monkeypatch, capsys):
        out = self._record(tmp_path, monkeypatch)
        capsys.readouterr()  # drain the record command's output
        code = bench_baseline.main(
            ["compare", "--baseline", str(out), "--json"]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert len(report["deltas"]) == len(bench_baseline.METRICS)
