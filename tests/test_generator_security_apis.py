"""Generated corpora exercise the security-relevant API surfaces."""

import pytest

from repro.apk.generator import GeneratorProfile, generate_app
from repro.vetting.sources_sinks import ICC_SEND_APIS, is_icc_send, is_sink, is_source


def callees_of(app):
    return [callee for method in app.methods for callee in method.callees()]


class TestSecurityApiCoverage:
    def test_icc_sends_appear_in_corpus(self):
        found = 0
        for seed in range(12):
            app = generate_app(seed, GeneratorProfile(scale=0.3))
            found += sum(1 for c in callees_of(app) if is_icc_send(c))
        assert found > 0, "corpus must exercise the ICC analysis"

    def test_leak_chain_is_never_clobbered(self):
        """The injected source->sink chain survives handler insertion
        for every leaky seed (the regression the protected-label set
        fixed)."""
        profile = GeneratorProfile(scale=0.2, leaky_fraction=1.0)
        for seed in range(8):
            app = generate_app(seed, profile)
            callees = callees_of(app)
            assert any(is_source(c) for c in callees)
            assert any(is_sink(c) for c in callees)
            # The laundering store/load pair around the source must be
            # intact: find the source call and check its method also
            # stores and reloads the fData field.
            for method in app.methods:
                if not any(is_source(c) for c in method.callees()):
                    continue
                texts = [s.text() for s in method.statements]
                source_at = next(
                    i for i, t in enumerate(texts) if "getDeviceId" in t
                    or "getLastKnownLocation" in t
                    or "getAccounts" in t
                    or "ContentResolver.query" in t
                )
                tail = texts[source_at:]
                assert any(".fData :=" in t for t in tail)
                assert any(":= " in t and ".fData" in t.split(":=")[1] for t in tail)

    def test_icc_api_table_consistent(self):
        for api, kind in ICC_SEND_APIS.items():
            assert kind in ("activity", "receiver", "service")
            assert is_icc_send(api)
            assert not is_sink(api) and not is_source(api)
