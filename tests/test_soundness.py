"""Soundness: concrete executions are covered by the static facts.

The heaviest-calibre correctness property in the suite: run a method
*concretely* (real heap, random branches) many times and check every
runtime points-to observation is present in the analysis' fact set at
that node.  A single violation would mean the transfer functions
under-approximate -- the one thing a static analysis must never do.

Scope: methods without internal callees (external calls are fine --
their opaque results are modeled exactly).  Cross-method flows rely on
summaries whose documented precision loss (field contents of
callee-fresh returns) is deliberate and covered by the targeted unit
tests instead.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.concrete import (
    ConcreteInterpreter,
    ExecutionBudgetExceeded,
    soundness_violations,
)
from repro.dataflow.worklist import SequentialWorklist
from repro.ir.parser import parse_app
from tests.conftest import tiny_app


def check_method(app, method, seeds) -> None:
    result = SequentialWorklist(method).run()
    for seed in seeds:
        interpreter = ConcreteInterpreter(app, method, seed=seed)
        try:
            observations = interpreter.run()
        except ExecutionBudgetExceeded:
            continue  # unlucky random walk in a hot loop; skip
        violations = soundness_violations(
            method, observations, result.node_facts, result.space
        )
        assert not violations, (
            f"{method.signature}: static facts miss concrete observations "
            f"{violations[:3]} (seed {seed})"
        )


class TestHandWritten:
    def test_demo_methods(self, demo_app):
        helper = demo_app.method(
            "com.demo.Main.helper(Ljava/lang/Object;)Ljava/lang/Object;"
        )
        check_method(demo_app, helper, seeds=range(10))

    def test_leaky_methods(self, leaky_app):
        for method in leaky_app.methods:
            check_method(leaky_app, method, seeds=range(10))

    def test_loop_and_heap(self):
        app = parse_app(
            "app p\n"
            "method a.B.m(Ljava/lang/Object;)V\n"
            "  param p: Ljava/lang/Object;\n"
            "  local x: Ljava/lang/Object;\n"
            "  local y: Ljava/lang/Object;\n"
            "  local c: I\n"
            "  L0: x := new a.B\n"
            "  L1: x.f := p\n"
            "  L2: y := x.f\n"
            "  L3: x.f := y\n"
            "  L4: y := p.f\n"
            "  L5: if c then goto L0\n"
            "  L6: return\nend\n"
        )
        check_method(app, app.method("a.B.m(Ljava/lang/Object;)V"), range(25))

    def test_exception_handler_path(self):
        app = parse_app(
            "app p\n"
            "method a.B.m()V\n"
            "  local x: Ljava/lang/Object;\n"
            "  local e: Ljava/lang/Object;\n"
            "  catch L3 from L0 to L2\n"
            "  L0: x := new a.B\n"
            "  L1: throw x\n"
            "  L2: nop\n"
            "  L3: e := Exception\n"
            "  L4: x := e\n"
            "  L5: return\nend\n"
        )
        check_method(app, app.method("a.B.m()V"), range(10))


@settings(max_examples=10, deadline=None)
@given(
    app_seed=st.integers(min_value=0, max_value=300),
    run_seed=st.integers(min_value=0, max_value=1_000),
)
def test_generated_leaf_methods_are_sound(app_seed, run_seed):
    """Property: random apps, random executions, zero violations."""
    app = tiny_app(app_seed)
    leaves = [
        method
        for method in app.methods
        if not any(callee in app.method_table for callee in method.callees())
    ]
    # The biggest leaves exercise the most statement variety.
    for method in sorted(leaves, key=len, reverse=True)[:3]:
        check_method(app, method, seeds=(run_seed, run_seed + 1))
