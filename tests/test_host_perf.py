"""Host-side performance layer: bit-exactness and cache/parallel tests.

The packed-bitset store, masked dynamics, fused pricing, parallel
corpus pipeline and on-disk cache are all *transparent* accelerations:
every observable number -- per-node fact sets, traces, and modeled
cycle counts -- must be identical to the seed implementation's.  These
tests pin that contract.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.bench.harness as harness
from repro.apk.corpus import AppCorpus
from repro.apk.generator import GeneratorProfile, generate_app
from repro.bench.cache import EvaluationCache, config_fingerprint, row_key
from repro.bench.parallel import plan_chunks, resolve_jobs
from repro.dataflow.bitset import (
    iter_bits,
    mask_from,
    mask_to_set,
    pack_indices,
    popcount_words,
    unpack_indices,
    words_for,
)
from repro.dataflow.matrix_store import BooleanMatrixStore, MatrixFactStore
from repro.dataflow.transfer import MaskTransfer, TransferFunctions
from repro.dataflow.worklist import SequentialWorklist, analyze_app_reference
from repro.gpu.memory import transactions_for_addresses, _transactions_scalar
from repro.perf import host_perf, host_perf_enabled, set_host_perf


@pytest.fixture()
def app():
    return generate_app(31, GeneratorProfile(scale=0.5))


# -- bitset primitives --------------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=199), max_size=40))
def test_pack_unpack_roundtrip(indices):
    words = words_for(200)
    row = pack_indices(indices, words)
    assert unpack_indices(row) == sorted(set(indices))
    assert popcount_words(row) == len(set(indices))
    mask = mask_from(indices)
    assert mask_to_set(mask) == set(indices)
    assert list(iter_bits(mask)) == sorted(set(indices))


# -- the three fact stores ----------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),
            st.lists(st.integers(min_value=0, max_value=149), max_size=10),
        ),
        max_size=40,
    )
)
def test_packed_boolean_set_stores_agree(ops):
    """Packed uint64 rows vs boolean rows vs plain sets, op by op."""
    packed = MatrixFactStore(4, 150)
    boolean = BooleanMatrixStore(4, 150)
    shadow = [set() for _ in range(4)]
    for node, facts in ops:
        grew = len(set(facts) - shadow[node]) > 0
        assert packed.insert_all(node, facts) == grew
        assert boolean.insert_all(node, facts) == grew
        shadow[node] |= set(facts)
    for node in range(4):
        assert packed.get(node) == boolean.get(node) == shadow[node]
        assert packed.size(node) == boolean.size(node) == len(shadow[node])
    assert packed.snapshot() == boolean.snapshot()
    assert packed.memory_bytes() == boolean.memory_bytes()


def test_single_fact_fast_path_reports_growth():
    store = MatrixFactStore(1, 70)
    assert store.insert_all(0, [64])
    assert not store.insert_all(0, [64])
    assert store.insert_all(0, [63])
    assert store.get(0) == {63, 64}


# -- masked transfer and the oracle worklist ----------------------------------


def test_mask_transfer_matches_set_transfer(app):
    for method in app.methods[:12]:
        wl = SequentialWorklist(method)
        masked = MaskTransfer(wl.transfer)
        result = wl.run()
        for node, facts in enumerate(result.node_facts):
            in_mask = mask_from(facts)
            out_set = wl.transfer.out_facts(node, set(facts))
            assert mask_to_set(masked.out_mask(node, in_mask)) == out_set


def test_masked_worklist_matches_legacy_oracle(app):
    with host_perf(False):
        legacy = analyze_app_reference(app)
    with host_perf(True):
        fast = analyze_app_reference(app)
    assert set(legacy.method_facts) == set(fast.method_facts)
    for signature, reference in legacy.method_facts.items():
        assert fast.method_facts[signature].node_facts == reference.node_facts
        assert fast.method_facts[signature].exit_facts == reference.exit_facts
    assert legacy.summaries == fast.summaries


# -- memory transaction model -------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(
    addresses=st.lists(
        st.integers(min_value=0, max_value=4096), min_size=1, max_size=32
    ),
    access_bytes=st.integers(min_value=1, max_value=128),
)
def test_transactions_fast_equals_scalar(addresses, access_bytes):
    fast = transactions_for_addresses(addresses, access_bytes)
    scalar = _transactions_scalar(addresses, access_bytes)
    assert fast == scalar


# -- end-to-end bit-exactness -------------------------------------------------


def test_evaluate_app_bit_exact_vs_seed_path(app):
    """The acceptance criterion: identical fact sets AND cycle counts.

    AppEvaluation equality covers every modeled float time (plain,
    MAT, GRP, full, CPU, Amandroid), the memory footprints and the
    worklist profile -- any drift in facts, traces or accumulation
    order shows up here.
    """
    with host_perf(False):
        legacy = harness.evaluate_app(app)
    with host_perf(True):
        fast = harness.evaluate_app(app)
    assert fast == legacy


# -- parallel pipeline --------------------------------------------------------


def test_plan_chunks_round_robin_and_total():
    assert plan_chunks([0, 1, 2, 3, 4], 2) == [[0, 2, 4], [1, 3]]
    assert plan_chunks([7], 4) == [[7]]
    chunks = plan_chunks(list(range(10)), 3)
    assert sorted(i for chunk in chunks for i in chunk) == list(range(10))


def test_resolve_jobs_env_and_clamping(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_JOBS", raising=False)
    assert resolve_jobs(None) == 1
    monkeypatch.setenv("REPRO_BENCH_JOBS", "3")
    assert resolve_jobs(None) == 3
    assert resolve_jobs(0) == 1
    assert resolve_jobs(10_000) > 1


def test_parallel_rows_identical_to_serial():
    corpus = AppCorpus(size=3, profile=GeneratorProfile(scale=0.4))
    harness._CACHE.clear()
    serial = harness.evaluate_corpus(corpus, jobs=1, no_cache=True)
    harness._CACHE.clear()
    parallel = harness.evaluate_corpus(corpus, jobs=2, no_cache=True)
    assert parallel == serial
    stats = harness.last_run_stats()
    assert stats.workers == 2
    assert stats.evaluated == 3


def test_worker_context_honors_override_and_env(monkeypatch):
    from repro.bench.parallel import worker_context

    monkeypatch.delenv("REPRO_MP_START", raising=False)
    assert worker_context("spawn").get_start_method() == "spawn"
    monkeypatch.setenv("REPRO_MP_START", "spawn")
    assert worker_context().get_start_method() == "spawn"
    # Unknown names fall back to the automatic choice, never abort.
    monkeypatch.setenv("REPRO_MP_START", "frobnicate")
    assert worker_context().get_start_method() in ("fork", "spawn")


def test_parallel_spawn_path_matches_serial(monkeypatch):
    """The pool must not hard-code fork: a forced ``spawn`` run (the
    only path on fork-less platforms) regenerates bit-identical rows
    from the fully-pickled task tuples."""
    corpus = AppCorpus(size=3, profile=GeneratorProfile(scale=0.4))
    harness._CACHE.clear()
    serial = harness.evaluate_corpus(corpus, jobs=1, no_cache=True)
    harness._CACHE.clear()
    monkeypatch.setenv("REPRO_MP_START", "spawn")
    spawned = harness.evaluate_corpus(corpus, jobs=2, no_cache=True)
    assert spawned == serial


# -- on-disk cache ------------------------------------------------------------


def test_cache_roundtrip_and_warm_skip(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_BENCH_CACHE", raising=False)
    corpus = AppCorpus(size=2, profile=GeneratorProfile(scale=0.4))

    harness._CACHE.clear()
    cold = harness.evaluate_corpus(corpus, jobs=1)
    stats = harness.last_run_stats()
    assert stats.evaluated == 2 and stats.disk_stores == 2
    assert stats.hit_rate == 0.0

    # A fresh process cache must resume entirely from disk.
    harness._CACHE.clear()
    warm = harness.evaluate_corpus(corpus, jobs=1)
    stats = harness.last_run_stats()
    assert stats.disk_hits == 2 and stats.evaluated == 0
    assert stats.hit_rate == 1.0
    assert warm == cold

    # Rows restored from JSON must compare equal field by field.
    for fresh, cached in zip(cold, warm):
        assert dataclasses.asdict(fresh) == dataclasses.asdict(cached)
        assert isinstance(cached.wl_mix_sync, tuple)

    # --no-cache ignores the populated cache.
    harness._CACHE.clear()
    harness.evaluate_corpus(corpus, jobs=1, no_cache=True)
    stats = harness.last_run_stats()
    assert stats.evaluated == 2 and not stats.cache_enabled


def test_cache_key_tracks_config_fingerprint(tmp_path):
    fingerprint = config_fingerprint(harness._CONFIGS)
    key = row_key(2020, 10, 1.0, 3, fingerprint)
    assert key != row_key(2020, 10, 1.0, 4, fingerprint)
    assert key != row_key(2020, 10, 1.0, 3, "other-config")
    cache = EvaluationCache(root=tmp_path, enabled=True)
    assert cache.load(key) is None
    assert cache.misses == 1


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    cache = EvaluationCache(root=tmp_path, enabled=True)
    key = row_key(1, 1, 1.0, 0, "fp")
    tmp_path.mkdir(exist_ok=True)
    (tmp_path / f"{key}.json").write_text("{not json")
    assert cache.load(key) is None
    assert cache.misses == 1


# -- the switch itself --------------------------------------------------------


def test_host_perf_toggle_restores_state():
    before = host_perf_enabled()
    with host_perf(not before):
        assert host_perf_enabled() is (not before)
    assert host_perf_enabled() is before
    set_host_perf(before)
