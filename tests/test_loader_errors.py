"""Structured loader errors: corrupt input fails with context, not a crash.

Complements :mod:`tests.test_container_robustness` (random flips over a
generated app) with an *exhaustive* single-byte sweep over a minimal
hand-built blob -- every byte position of both container formats is
corrupted once -- plus targeted checks that the structured error types
carry their promised context (byte offset / line number).
"""

from __future__ import annotations

import pytest

from repro.apk.bytecode import BytecodeError
from repro.apk.dex import GdxFormatError, pack_app, unpack_app
from repro.apk.dex2 import pack_app_v2, unpack_app_v2
from repro.ir.parser import (
    IRSyntaxError,
    parse_app,
    parse_signature,
    parse_statement,
)

#: Mirrors tests.test_container_robustness.ACCEPTABLE.
ACCEPTABLE = (GdxFormatError, BytecodeError, IRSyntaxError, ValueError, MemoryError)

#: Small but complete: global, component with callbacks, two methods,
#: an exception handler, internal and external calls.
MINIMAL_SOURCE = """
app com.min category tools
global com.min.G.gOut: Ljava/lang/Object;
component com.min.Main activity exported
  callback onCreate com.min.Main.m(Ljava/lang/Object;)V
end
method com.min.Main.m(Ljava/lang/Object;)V
  param p: Ljava/lang/Object;
  local e: Ljava/lang/Object;
  local i: I
  L0: i := 1
  L1: @@com.min.G.gOut := p
  L2: call com.min.Main.h()V()
  L3: goto L5
  L4: e := Exception
  L5: return
  catch L4 from L1 to L3
end
method com.min.Main.h()V
  L0: return
end
"""


@pytest.fixture(scope="module")
def minimal_app():
    return parse_app(MINIMAL_SOURCE)


@pytest.fixture(scope="module")
def minimal_blobs(minimal_app):
    return pack_app(minimal_app), pack_app_v2(minimal_app)


class TestExhaustiveByteFlips:
    """Flip EVERY byte of the minimal blobs once; never crash raw."""

    def _sweep(self, blob: bytes) -> int:
        rejected = 0
        for offset in range(len(blob)):
            corrupted = bytearray(blob)
            corrupted[offset] = 0x00 if corrupted[offset] == 0xFF else 0xFF
            try:
                unpack_app(bytes(corrupted))
            except ACCEPTABLE:
                rejected += 1
        return rejected

    def test_every_v1_byte(self, minimal_blobs):
        v1, _ = minimal_blobs
        rejected = self._sweep(v1)
        assert rejected > 0  # the sweep does reach rejecting positions

    def test_every_v2_byte(self, minimal_blobs):
        _, v2 = minimal_blobs
        rejected = self._sweep(v2)
        assert rejected > 0


class TestStructuredContainerErrors:
    def test_v1_bad_descriptor_carries_offset(self, minimal_blobs):
        v1, _ = minimal_blobs
        corrupted = v1.replace(b"Ljava/lang/Object;", b"Qjava/lang/Object;", 1)
        with pytest.raises(GdxFormatError) as excinfo:
            unpack_app(corrupted)
        assert "offset" in str(excinfo.value)

    def test_v2_bad_descriptor_carries_offset(self, minimal_blobs):
        _, v2 = minimal_blobs
        corrupted = v2.replace(b"Ljava/lang/Object;", b"Qjava/lang/Object;", 1)
        with pytest.raises(BytecodeError) as excinfo:
            unpack_app_v2(corrupted)
        assert "offset" in str(excinfo.value)

    def test_v2_roundtrips_cleanly(self, minimal_app, minimal_blobs):
        _, v2 = minimal_blobs
        assert unpack_app_v2(v2).package == minimal_app.package


class TestStructuredTextErrors:
    def test_unknown_component_kind(self):
        source = MINIMAL_SOURCE.replace("Main activity", "Main widget")
        with pytest.raises(IRSyntaxError) as excinfo:
            parse_app(source)
        assert excinfo.value.line_number > 0
        assert "component kind" in str(excinfo.value)

    def test_malformed_callback_line(self):
        source = MINIMAL_SOURCE.replace(
            "callback onCreate com.min.Main.m(Ljava/lang/Object;)V",
            "callback onCreate",
        )
        with pytest.raises(IRSyntaxError) as excinfo:
            parse_app(source)
        assert excinfo.value.line_number > 0

    def test_bad_local_descriptor(self):
        source = MINIMAL_SOURCE.replace("local i: I", "local i: Qbad;")
        with pytest.raises(IRSyntaxError) as excinfo:
            parse_app(source)
        assert excinfo.value.line_number > 0

    def test_bad_method_signature(self):
        source = MINIMAL_SOURCE.replace(
            "method com.min.Main.h()V", "method com.min.Main.h(Q)V"
        )
        with pytest.raises(IRSyntaxError) as excinfo:
            parse_app(source)
        assert excinfo.value.line_number > 0

    def test_unterminated_array_descriptor(self):
        with pytest.raises(ValueError) as excinfo:
            parse_signature("a.B.m([)V")
        assert "unterminated" in str(excinfo.value)

    def test_unterminated_class_descriptor(self):
        with pytest.raises(ValueError) as excinfo:
            parse_signature("a.B.m(Ljava/lang/Object)V")
        assert "unterminated" in str(excinfo.value)

    def test_malformed_call_statement(self):
        with pytest.raises(ValueError):
            parse_statement("L0", "call ???")
