"""Rule packs: parsing, sanitizer semantics, findings, cache keying."""

from __future__ import annotations

import json

import pytest

from repro.apk.corpus import AppCorpus
from repro.apk.manifest import AndroidManifest
from repro.bench.cache import CACHE_SCHEMA, row_key
from repro.bench.harness import (
    evaluate_corpus,
    finding_severity_counts,
    last_run_stats,
)
from repro.ir.parser import parse_app
from repro.rules.findings import (
    FINDINGS_SCHEMA_VERSION,
    SEVERITIES,
    Finding,
    cap_severity,
    findings_document,
    findings_to_json,
    severity_band,
    sort_findings,
)
from repro.rules.pack import (
    PackError,
    default_pack,
    load_pack,
    parse_pack,
    shipped_packs,
)
from repro.rules.scenarios import scenario_corpus
from repro.vetting.report import vet_app
from repro.vetting.sources_sinks import KIND_SANITIZER
from tests.conftest import TINY_PROFILE

SRC = "android.telephony.TelephonyManager.getDeviceId()Ljava/lang/String;"
SNK = "android.telephony.SmsManager.sendTextMessage(Ljava/lang/String;Ljava/lang/String;)V"
SAN = "com.test.Scrub.hash(Ljava/lang/String;)Ljava/lang/String;"
PERM = "android.permission.READ_PHONE_STATE"


def make_doc(**overrides):
    """A minimal valid pack document; keyword args override sections."""
    doc = {
        "pack_schema": 1,
        "name": "test-pack",
        "version": "1",
        "description": "unit-test pack",
        "apis": [
            {
                "signature": SRC,
                "kind": "source",
                "category": "UNIQUE_IDENTIFIER",
                "permission": PERM,
            },
            {"signature": SNK, "kind": "sink", "category": "SMS"},
            {"signature": SAN, "kind": "sanitizer", "category": "hash"},
        ],
        "taint_rules": [
            {
                "id": "TEST-001",
                "description": "device id reaches SMS",
                "sources": ["UNIQUE_IDENTIFIER"],
                "sinks": ["SMS"],
                "severity": "critical",
                "confidence": 0.9,
            }
        ],
        "icc_rules": [],
        "lint_rules": [],
    }
    doc.update(overrides)
    return doc


LEAK_IR = (
    "app com.leak\n"
    "method a.B.m()V\n"
    "  local id: Ljava/lang/String;\n"
    f"  L0: call id := {SRC}()\n"
    f"  L1: call {SNK}(id, id)\n"
    "  L2: return\nend\n"
)

SANITIZED_IR = (
    "app com.sanitized\n"
    "method a.B.m()V\n"
    "  local id: Ljava/lang/String;\n"
    "  local out: Ljava/lang/String;\n"
    f"  L0: call id := {SRC}()\n"
    f"  L1: call out := {SAN}(id)\n"
    f"  L2: call {SNK}(out, out)\n"
    "  L3: return\nend\n"
)


class TestPackParsing:
    def test_valid_document_compiles(self):
        pack = parse_pack(make_doc())
        assert pack.name == "test-pack"
        registry = pack.registry()
        assert registry.is_kind(SAN, KIND_SANITIZER)
        rule = pack.match_taint(["UNIQUE_IDENTIFIER"], "SMS")
        assert rule is not None and rule.id == "TEST-001"
        assert pack.match_taint(["UNIQUE_IDENTIFIER"], "NETWORK") is None

    def test_bad_schema_version(self):
        with pytest.raises(PackError, match="pack_schema"):
            parse_pack(make_doc(pack_schema=99))

    def test_missing_name(self):
        with pytest.raises(PackError, match="name"):
            parse_pack(make_doc(name=""))

    def test_unknown_severity(self):
        doc = make_doc()
        doc["taint_rules"][0]["severity"] = "catastrophic"
        with pytest.raises(PackError, match="severity"):
            parse_pack(doc)

    def test_confidence_out_of_range(self):
        doc = make_doc()
        doc["taint_rules"][0]["confidence"] = 1.5
        with pytest.raises(PackError, match="confidence"):
            parse_pack(doc)

    def test_selector_matching_nothing_in_pack(self):
        doc = make_doc()
        doc["taint_rules"][0]["sources"] = ["LOCATION"]
        with pytest.raises(PackError, match="matches nothing"):
            parse_pack(doc)

    def test_empty_selector(self):
        doc = make_doc()
        doc["taint_rules"][0]["sinks"] = []
        with pytest.raises(PackError, match="non-empty"):
            parse_pack(doc)

    def test_duplicate_rule_id(self):
        doc = make_doc()
        doc["taint_rules"].append(dict(doc["taint_rules"][0]))
        with pytest.raises(PackError, match="duplicate rule id"):
            parse_pack(doc)

    def test_pack_with_no_rules(self):
        with pytest.raises(PackError, match="no rules"):
            parse_pack(make_doc(taint_rules=[]))

    def test_duplicate_api_signature(self):
        doc = make_doc()
        doc["apis"].append(dict(doc["apis"][0]))
        with pytest.raises(PackError, match="duplicate registry signature"):
            parse_pack(doc)

    def test_invalid_api_kind(self):
        doc = make_doc()
        doc["apis"][0]["kind"] = "sourc"
        with pytest.raises(PackError, match="invalid kind"):
            parse_pack(doc)

    def test_icc_category_must_be_component_kind(self):
        doc = make_doc()
        doc["apis"].append(
            {
                "signature": "a.B.send(Landroid/content/Intent;)V",
                "kind": "icc-send",
                "category": "dialog",
            }
        )
        with pytest.raises(PackError, match="not a component kind"):
            parse_pack(doc)

    def test_unknown_lint_rule(self):
        doc = make_doc(
            lint_rules=[
                {"id": "NOPE-404", "severity": "low", "confidence": 0.5}
            ]
        )
        with pytest.raises(PackError, match="unknown lint rule"):
            parse_pack(doc)


class TestPackLoading:
    def test_shipped_packs_load_and_fingerprint(self):
        names = shipped_packs()
        assert len(names) >= 3
        fingerprints = set()
        for name in names:
            pack = load_pack(name)
            assert pack.taint_rules or pack.icc_rules or pack.lint_rules
            fp = pack.fingerprint()
            assert len(fp) == 16
            fingerprints.add(fp)
        assert len(fingerprints) == len(names)  # packs never alias

    def test_unknown_name_lists_shipped(self):
        with pytest.raises(PackError, match="unknown rule pack"):
            load_pack("no-such-pack")

    def test_fingerprint_stable_and_edit_sensitive(self):
        base = parse_pack(make_doc())
        again = parse_pack(make_doc())
        assert base.fingerprint() == again.fingerprint()
        doc = make_doc()
        doc["taint_rules"][0]["severity"] = "low"
        assert parse_pack(doc).fingerprint() != base.fingerprint()

    def test_toml_pack_matches_json_equivalent(self, tmp_path):
        toml_text = (
            'pack_schema = 1\n'
            'name = "test-pack"\n'
            'version = "1"\n'
            'description = "unit-test pack"\n'
            "[[apis]]\n"
            f'signature = "{SRC}"\n'
            'kind = "source"\n'
            'category = "UNIQUE_IDENTIFIER"\n'
            f'permission = "{PERM}"\n'
            "[[apis]]\n"
            f'signature = "{SNK}"\n'
            'kind = "sink"\n'
            'category = "SMS"\n'
            "[[apis]]\n"
            f'signature = "{SAN}"\n'
            'kind = "sanitizer"\n'
            'category = "hash"\n'
            "[[taint_rules]]\n"
            'id = "TEST-001"\n'
            'description = "device id reaches SMS"\n'
            'sources = ["UNIQUE_IDENTIFIER"]\n'
            'sinks = ["SMS"]\n'
            'severity = "critical"\n'
            "confidence = 0.9\n"
        )
        path = tmp_path / "pack.toml"
        path.write_text(toml_text)
        pack = load_pack(path)
        assert pack.fingerprint() == parse_pack(make_doc()).fingerprint()

    def test_default_pack_has_no_sanitizers(self):
        pack = load_pack("default")
        assert pack.name == "default"
        assert not pack.registry().entries(kind=KIND_SANITIZER)


class TestSanitizerSemantics:
    def test_sanitizer_kills_the_flow(self):
        pack = parse_pack(make_doc())
        report = vet_app(parse_app(SANITIZED_IR), rules=pack)
        assert report.flows == ()
        assert report.findings == ()
        assert report.verdict == "clean"
        # The kill is the evidence the suppressed flow actually existed.
        assert len(report.sanitizer_kills) >= 1
        kill = report.sanitizer_kills[0]
        assert kill.api == SAN
        assert SRC in kill.killed_sources

    def test_unsanitized_flow_fires(self):
        pack = parse_pack(make_doc())
        report = vet_app(parse_app(LEAK_IR), rules=pack)
        assert len(report.flows) == 1
        assert [f.rule_id for f in report.findings] == ["TEST-001"]
        finding = report.findings[0]
        assert finding.severity == "critical"  # no manifest: no ceiling
        assert finding.permission_declared is None
        assert report.sanitizer_kills == ()

    def test_default_semantics_treat_sanitizer_as_laundering(self):
        # Without the pack the same API is an unknown external call, so
        # taint propagates straight through it: the kill is pack-scoped.
        report = vet_app(parse_app(SANITIZED_IR))
        assert len(report.flows) == 1
        assert report.sanitizer_kills == ()


class TestDefaultPackBitIdentity:
    def test_verdict_and_flows_identical(self, leaky_app):
        legacy = vet_app(leaky_app)
        packed = vet_app(leaky_app, rules=default_pack())
        assert packed.verdict == legacy.verdict
        assert packed.risk_score == legacy.risk_score
        assert packed.flows == legacy.flows
        assert packed.icc_flows == legacy.icc_flows
        assert packed.witnesses == legacy.witnesses
        assert packed.implied_permissions == legacy.implied_permissions
        assert packed.sanitizer_kills == () and legacy.sanitizer_kills == ()
        # The pack adds findings on top; the legacy path never has any.
        assert legacy.findings == ()
        assert packed.findings


class TestManifestCrossCheck:
    def _finding(self, manifest):
        pack = parse_pack(make_doc())
        report = vet_app(parse_app(LEAK_IR), rules=pack, manifest=manifest)
        assert len(report.findings) == 1
        return report.findings[0]

    def test_missing_permission_caps_severity(self):
        finding = self._finding(
            AndroidManifest(package="com.leak", permissions=())
        )
        assert finding.permission_declared is False
        assert finding.severity == "medium"

    def test_declared_permission_keeps_severity(self):
        finding = self._finding(
            AndroidManifest(package="com.leak", permissions=(PERM,))
        )
        assert finding.permission_declared is True
        assert finding.severity == "critical"
        assert PERM in finding.implied_permissions


class TestFindingsModule:
    def test_severity_band_boundaries(self):
        assert severity_band(10) == "critical"
        assert severity_band(9) == "critical"
        assert severity_band(8) == "high"
        assert severity_band(7) == "high"
        assert severity_band(6) == "medium"
        assert severity_band(4) == "medium"
        assert severity_band(3) == "low"
        assert severity_band(2) == "low"
        assert severity_band(1) == "info"
        assert severity_band(0) == "info"

    def test_cap_severity(self):
        assert cap_severity("critical", False) == "medium"
        assert cap_severity("high", False) == "medium"
        assert cap_severity("low", False) == "low"
        assert cap_severity("critical", None) == "critical"
        assert cap_severity("critical", True) == "critical"

    def _finding(self, rule_id, severity, confidence=0.5):
        return Finding(
            rule_id=rule_id,
            pack="p",
            kind="taint",
            severity=severity,
            confidence=confidence,
            package="com.x",
            method="a.B.m()V",
            sink_label="L1",
            sink_api=SNK,
            message="m",
        )

    def test_sort_findings_most_severe_first(self):
        ordered = sort_findings(
            [
                self._finding("A", "low"),
                self._finding("B", "critical"),
                self._finding("C", "medium", confidence=0.9),
                self._finding("D", "medium", confidence=0.1),
            ]
        )
        assert [f.rule_id for f in ordered] == ["B", "C", "D", "A"]

    def test_findings_document_schema_and_counts(self):
        document = findings_document(
            [self._finding("A", "low"), self._finding("B", "critical")],
            pack_name="p",
            pack_fingerprint="abc",
        )
        assert document["schema"] == FINDINGS_SCHEMA_VERSION
        assert document["pack"] == "p"
        assert document["pack_fingerprint"] == "abc"
        assert document["counts"]["critical"] == 1
        assert document["counts"]["low"] == 1
        assert document["counts"]["info"] == 0
        # Round-trips through the JSON form.
        parsed = json.loads(findings_to_json([], "p"))
        assert parsed["findings"] == []

    def test_finding_severity_counts(self):
        assert finding_severity_counts([]) == (0, 0, 0, 0, 0)
        counts = finding_severity_counts(
            [
                self._finding("A", "critical"),
                self._finding("B", "critical"),
                self._finding("C", "info"),
            ]
        )
        assert counts == (1, 0, 0, 0, 2)
        assert list(SEVERITIES) == ["info", "low", "medium", "high", "critical"]


class TestCacheAliasing:
    def test_schema_covers_icc_resolution(self):
        # Schema 5 introduced the resolve-mode key component; later
        # bumps (6: two-level cache) keep covering it.
        assert CACHE_SCHEMA >= 5

    def test_row_key_varies_with_rules_fingerprint(self):
        plain = row_key(1, 2, "pf", 0, "cf")
        packed = row_key(1, 2, "pf", 0, "cf", rules_fp="abcd")
        other = row_key(1, 2, "pf", 0, "cf", rules_fp="efgh")
        assert len({plain, packed, other}) == 3

    def test_pack_rows_never_alias_plain_rows(self, tmp_path, monkeypatch):
        from repro.bench.harness import _CACHE

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        _CACHE.clear()
        corpus = AppCorpus(size=2, base_seed=884200, profile=TINY_PROFILE)

        evaluate_corpus(corpus)
        assert last_run_stats().evaluated == 2

        # A pack sweep over the warm corpus must not reuse plain rows.
        packed = evaluate_corpus(corpus, rules="exfiltration")
        stats = last_run_stats()
        assert stats.evaluated == 2
        assert stats.process_hits == 0 and stats.disk_hits == 0
        for row in packed:
            assert len(row.finding_counts) == 5

        # Same pack again: in-process hits.
        again = evaluate_corpus(corpus, rules="exfiltration")
        assert last_run_stats().process_hits == 2
        assert again == packed

        # Disk round-trip restores finding_counts as a tuple (row
        # equality would fail on a list).
        _CACHE.clear()
        from_disk = evaluate_corpus(corpus, rules="exfiltration")
        assert last_run_stats().disk_hits == 2
        assert from_disk == packed


class TestScenarioDeterminism:
    def test_same_pack_same_corpus(self):
        pack = load_pack("exfiltration")
        first = scenario_corpus(pack, count=3)
        second = scenario_corpus(pack, count=3)
        assert [s.kind for s in first] == [s.kind for s in second]
        assert [s.expected_rule for s in first] == [
            s.expected_rule for s in second
        ]
        from repro.apk.dex import pack_app

        assert [pack_app(s.app) for s in first] == [
            pack_app(s.app) for s in second
        ]
