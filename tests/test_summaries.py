"""Unit tests for SBDA summary extraction."""

import pytest

from repro.dataflow.summaries import (
    MethodSummary,
    SummaryBuilder,
    classify_instance,
    external_summary,
)
from repro.dataflow.worklist import SequentialWorklist
from repro.ir.parser import parse_app


def summary_of(method_source: str, signature: str, summaries=None):
    app = parse_app(f"app p\n{method_source}")
    result = SequentialWorklist(app.method(signature), summaries).run()
    return SummaryBuilder(result.space).build(result.exit_facts)


class TestClassify:
    def test_param(self):
        assert classify_instance(("param", 2)) == ("param", 2)

    def test_global(self):
        assert classify_instance(("global", "g")) == ("global", "g")

    def test_pfield(self):
        assert classify_instance(("pfield", 0, "f")) == ("pfield", 0, "f")

    def test_everything_else_is_fresh(self):
        for instance in (("site", "L0", "a.B"), ("null",), ("const", "str"),
                         ("call", "L3"), ("exc", "L1"), ("class", "a.B")):
            assert classify_instance(instance) == ("fresh",)


class TestExtraction:
    def test_returns_fresh(self):
        summary = summary_of(
            "method a.B.m()Ljava/lang/Object;\n"
            "  local x: Ljava/lang/Object;\n"
            "  L0: x := new a.B\n  L1: return x\nend\n",
            "a.B.m()Ljava/lang/Object;",
        )
        assert summary.returns_fresh
        assert not summary.return_params

    def test_returns_param(self):
        summary = summary_of(
            "method a.B.m(Ljava/lang/Object;)Ljava/lang/Object;\n"
            "  param p: Ljava/lang/Object;\n"
            "  L0: return p\nend\n",
            "a.B.m(Ljava/lang/Object;)Ljava/lang/Object;",
        )
        assert summary.return_params == frozenset({0})
        assert not summary.returns_fresh

    def test_returns_param_field(self):
        summary = summary_of(
            "method a.B.m(Ljava/lang/Object;)Ljava/lang/Object;\n"
            "  param p: Ljava/lang/Object;\n"
            "  local r: Ljava/lang/Object;\n"
            "  L0: r := p.f\n  L1: return r\nend\n",
            "a.B.m(Ljava/lang/Object;)Ljava/lang/Object;",
        )
        assert summary.return_pfields == frozenset({(0, "f")})

    def test_global_write_recorded(self):
        summary = summary_of(
            "method a.B.m(Ljava/lang/Object;)V\n"
            "  param p: Ljava/lang/Object;\n"
            "  L0: @@p.G.g := p\n  L1: return\nend\n",
            "a.B.m(Ljava/lang/Object;)V",
        )
        assert summary.global_writes == {"p.G.g": frozenset({("param", 0)})}

    def test_unchanged_global_is_not_an_effect(self):
        summary = summary_of(
            "method a.B.m()V\n"
            "  local x: Ljava/lang/Object;\n"
            "  L0: x := @@p.G.g\n  L1: return\nend\n",
            "a.B.m()V",
        )
        assert not summary.global_writes
        assert "p.G.g" in summary.globals_read

    def test_param_field_write_recorded(self):
        summary = summary_of(
            "method a.B.m(Ljava/lang/Object;)V\n"
            "  param p: Ljava/lang/Object;\n"
            "  local x: Ljava/lang/Object;\n"
            "  L0: x := new a.B\n  L1: p.f := x\n  L2: return\nend\n",
            "a.B.m(Ljava/lang/Object;)V",
        )
        assert summary.field_writes == {
            (("param", 0), "f"): frozenset({("fresh",)})
        }

    def test_unescaped_writes_summarized_away(self):
        summary = summary_of(
            "method a.B.m()V\n"
            "  local x: Ljava/lang/Object;\n"
            "  L0: x := new a.B\n  L1: x.f := x\n  L2: return\nend\n",
            "a.B.m()V",
        )
        assert not summary.field_writes

    def test_identity_pfield_not_an_effect(self):
        # p.f := p.f is a no-op from the caller's perspective.
        summary = summary_of(
            "method a.B.m(Ljava/lang/Object;)V\n"
            "  param p: Ljava/lang/Object;\n"
            "  local x: Ljava/lang/Object;\n"
            "  L0: x := p.f\n  L1: p.f := x\n  L2: return\nend\n",
            "a.B.m(Ljava/lang/Object;)V",
        )
        assert not summary.field_writes


class TestFootprint:
    def test_identity(self):
        assert MethodSummary(signature="s").is_identity()
        assert not external_summary("s").is_identity()

    def test_footprint_collects_globals_and_fields(self):
        summary = MethodSummary(
            signature="s",
            global_writes={"g1": frozenset({("global", "g2")})},
            field_writes={(("param", 0), "f"): frozenset({("pfield", 1, "h")})},
            return_pfields=frozenset({(0, "k")}),
            globals_read=frozenset({"g3"}),
        )
        footprint = summary.footprint()
        assert footprint.globals_touched == frozenset({"g1", "g2", "g3"})
        assert footprint.fields_written == frozenset({"f", "h", "k"})
        assert footprint.returns_value


class TestExternal:
    def test_external_returns_fresh_only(self):
        summary = external_summary("lib.M.x()V")
        assert summary.returns_fresh
        assert not summary.global_writes
        assert not summary.field_writes
