"""Generator tests: determinism, Table I bands, structural validity."""

import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apk.generator import (
    AppGenerator,
    GeneratorProfile,
    SINK_APIS,
    SOURCE_APIS,
    generate_app,
)
from repro.cfg.intra import build_intra_cfg
from repro.ir.printer import print_app
from repro.ir.statements import STATEMENT_KINDS, branch_class
from tests.conftest import SMALL_PROFILE, TINY_PROFILE


class TestDeterminism:
    def test_same_seed_same_app(self):
        assert print_app(generate_app(42, TINY_PROFILE)) == print_app(
            generate_app(42, TINY_PROFILE)
        )

    def test_different_seeds_differ(self):
        assert print_app(generate_app(1, TINY_PROFILE)) != print_app(
            generate_app(2, TINY_PROFILE)
        )


class TestStructuralValidity:
    @pytest.mark.parametrize("seed", range(5))
    def test_bodies_validate(self, seed):
        # Method construction validates labels/jumps/handlers; building
        # every CFG exercises the exceptional edges too.
        app = generate_app(seed, SMALL_PROFILE)
        for method in app.methods:
            build_intra_cfg(method)

    def test_components_reference_real_methods(self):
        app = generate_app(7, SMALL_PROFILE)
        for component in app.components:
            for signature in component.callbacks.values():
                assert signature in app.method_table

    def test_internal_callees_resolve_or_are_apis(self):
        from repro.vetting.sources_sinks import ICC_SEND_APIS

        app = generate_app(11, SMALL_PROFILE)
        known_apis = set(SOURCE_APIS) | set(SINK_APIS) | set(ICC_SEND_APIS)
        for method in app.methods:
            for callee in method.callees():
                assert callee in app.method_table or callee in known_apis

    def test_scale_shrinks_apps(self):
        big = generate_app(3, GeneratorProfile(scale=1.0))
        small = generate_app(3, GeneratorProfile(scale=0.1))
        assert small.method_count() < big.method_count()


class TestStatementDiversity:
    def test_many_branch_classes_exercised(self):
        classes = set()
        for seed in range(6):
            app = generate_app(seed, SMALL_PROFILE)
            for method in app.methods:
                for statement in method.statements:
                    classes.add(branch_class(statement))
        # The corpus exercises most of the taxonomy (the exact count
        # varies by seed; divergence needs variety, not completeness).
        assert len(classes) >= 18

    def test_all_statement_categories_present(self):
        kinds = set()
        for seed in range(6):
            app = generate_app(seed, SMALL_PROFILE)
            for method in app.methods:
                for statement in method.statements:
                    kinds.add(statement.kind)
        assert kinds == set(STATEMENT_KINDS)

    def test_handlers_generated(self):
        found = any(
            method.handlers
            for seed in range(4)
            for method in generate_app(seed, SMALL_PROFILE).methods
        )
        assert found


class TestTableIBands:
    """Corpus averages within a band of Table I (full fit is asserted
    by the calibration tool over larger samples)."""

    def test_sampled_averages(self):
        apps = [generate_app(seed) for seed in range(12)]
        nodes = statistics.mean(a.statement_count() for a in apps)
        methods = statistics.mean(a.method_count() for a in apps)
        variables = statistics.mean(a.variable_count() for a in apps)
        assert 3000 < nodes < 12000       # paper: 6217
        assert 120 < methods < 500        # paper: 268
        assert 90 < variables < 140       # paper: 116

    def test_leaky_fraction_rough(self):
        profile = GeneratorProfile(scale=0.08, leaky_fraction=1.0)
        apps = [generate_app(seed, profile) for seed in range(6)]
        from repro.vetting.sources_sinks import is_sink, is_source

        def has_source_and_sink(app):
            callees = [c for m in app.methods for c in m.callees()]
            return any(map(is_source, callees)) and any(map(is_sink, callees))

        assert all(has_source_and_sink(app) for app in apps)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2_000))
def test_generated_apps_always_constructible(seed):
    """Property: generation never produces invalid IR."""
    app = generate_app(seed, TINY_PROFILE)
    assert app.method_count() >= 4
    for method in app.methods:
        build_intra_cfg(method)
