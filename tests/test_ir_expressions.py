"""Unit tests for the 17 expression kinds."""

import pytest

from repro.ir.expressions import (
    AccessExpr,
    BinaryExpr,
    CallRhs,
    CastExpr,
    CmpExpr,
    ConstClassExpr,
    EXPRESSION_KINDS,
    ExceptionExpr,
    IndexingExpr,
    InstanceOfExpr,
    LengthExpr,
    LiteralExpr,
    NewExpr,
    NullExpr,
    StaticFieldAccessExpr,
    TupleExpr,
    UnaryExpr,
    VariableNameExpr,
    expression_class,
)
from repro.ir.types import OBJECT, ObjectType


def test_exactly_seventeen_kinds():
    """The paper enumerates 17 assignment expression kinds."""
    assert len(EXPRESSION_KINDS) == 17
    assert len(set(EXPRESSION_KINDS)) == 17


def test_every_kind_resolvable():
    for kind in EXPRESSION_KINDS:
        cls = expression_class(kind)
        assert cls.kind == kind


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        expression_class("FrobExpr")


class TestUses:
    def test_variable(self):
        assert VariableNameExpr(name="x").uses() == ("x",)

    def test_access_reads_base_only(self):
        assert AccessExpr(base="o", field_name="f").uses() == ("o",)

    def test_indexing_reads_base_and_index(self):
        assert IndexingExpr(base="a", index="i").uses() == ("a", "i")

    def test_binary_reads_both(self):
        assert BinaryExpr(op="+", left="a", right="b").uses() == ("a", "b")

    def test_call_reads_args(self):
        assert CallRhs(callee="m", args=("a", "b")).uses() == ("a", "b")

    def test_constants_read_nothing(self):
        for expr in (NullExpr(), LiteralExpr(value=3), ConstClassExpr(),
                     ExceptionExpr(), NewExpr()):
            assert expr.uses() == ()

    def test_tuple_reads_elements(self):
        assert TupleExpr(elements=("a", "b", "c")).uses() == ("a", "b", "c")


class TestText:
    def test_new(self):
        assert NewExpr(allocated=ObjectType("a.B")).text() == "new a.B"

    def test_access(self):
        assert AccessExpr(base="o", field_name="f").text() == "o.f"

    def test_static(self):
        expr = StaticFieldAccessExpr(owner="a.B", field_name="g")
        assert expr.text() == "@@a.B.g"
        assert expr.global_slot == "a.B.g"

    def test_indexing(self):
        assert IndexingExpr(base="a", index="i").text() == "a[i]"

    def test_string_literal_escaped(self):
        assert LiteralExpr(value='say "hi"').text() == '"say \\"hi\\""'

    def test_cast(self):
        assert CastExpr(target=OBJECT, operand="x").text() == "(Ljava/lang/Object;) x"

    def test_cmp(self):
        assert CmpExpr(op="cmpl", left="a", right="b").text() == "cmpl(a, b)"

    def test_instanceof(self):
        expr = InstanceOfExpr(operand="x", tested=OBJECT)
        assert expr.text() == "x instanceof Ljava/lang/Object;"

    def test_length(self):
        assert LengthExpr(operand="a").text() == "length(a)"

    def test_unary(self):
        assert UnaryExpr(op="-", operand="x").text() == "-x"

    def test_call(self):
        assert CallRhs(callee="a.B.m()V", args=("x",)).text() == "call a.B.m()V(x)"

    def test_tuple(self):
        assert TupleExpr(elements=("a", "b")).text() == "(a, b)"


def test_expressions_are_immutable():
    expr = VariableNameExpr(name="x")
    with pytest.raises(AttributeError):
        expr.name = "y"


def test_expressions_hashable():
    assert len({NullExpr(), NullExpr(), LiteralExpr(value=1)}) == 2
