"""Demand-driven targeted vetting: pre-scan, slice, equivalence, serve.

The load-bearing property is *anchored-flow equivalence*: a targeted
run restricted to sink set S must report exactly the full-IDFG
oracle's flows whose sink is in S, with bit-identical facts for every
slice member.  The suites here assert that on hand-written apps that
stress each slice rule (callees, relevant callers, global writers) and
on a generated-corpus sweep, plus the skip path, the cache-key
aliasing fix, and the serve/CLI integration.
"""

import json

import pytest

from repro import obs
from repro.apk.corpus import AppCorpus
from repro.apk.dex import pack_app
from repro.apk.loader import save_gdx
from repro.core.engine import AppWorkload
from repro.ir.parser import parse_app
from repro.vetting.sources_sinks import (
    DEFAULT_REGISTRY,
    KIND_ICC_SEND,
    KIND_SINK,
    KIND_SOURCE,
    SINK_CATEGORIES,
    SOURCE_CATEGORIES,
    ApiEntry,
    ApiRegistry,
)
from repro.vetting.taint import TaintAnalysis
from repro.vetting.targeted import (
    TargetSpec,
    TargetSpecError,
    backward_slice,
    build_targeted_workload,
    find_anchors,
    scan_blob,
    scan_gdx,
    slice_estimate,
    taint_relevant_methods,
    vet_targeted,
)
from tests.conftest import LEAKY_APP_SOURCE, TINY_PROFILE

SRC = "android.telephony.TelephonyManager.getDeviceId()Ljava/lang/String;"
SNK = "android.telephony.SmsManager.sendTextMessage(Ljava/lang/String;Ljava/lang/String;)V"
LOG = "android.util.Log.d(Ljava/lang/String;Ljava/lang/String;)I"


def oracle_flows(app, spec):
    """The full-IDFG flow set restricted to the targeted sinks."""
    workload = AppWorkload.build(app)
    flows = TaintAnalysis(workload.analyzed_app, workload.idfg).run()
    return workload, frozenset(f for f in flows if f.sink_api in spec)


def targeted_flows(app, spec):
    """The sliced-run flow set (empty when the pre-scan skips)."""
    targeted = build_targeted_workload(app, spec)
    if targeted.workload is None:
        return targeted, frozenset()
    workload = targeted.workload
    flows = TaintAnalysis(workload.analyzed_app, workload.idfg).run()
    return targeted, frozenset(f for f in flows if f.sink_api in spec)


class TestTargetSpec:
    def test_parse_signature(self):
        spec = TargetSpec.parse(SNK)
        assert spec.sinks == (SNK,)
        assert SNK in spec and len(spec) == 1 and bool(spec)

    def test_parse_category_expands(self):
        spec = TargetSpec.parse("sms")
        assert spec.sinks == (SNK,)

    def test_parse_mixed_dedupes_and_sorts(self):
        spec = TargetSpec.parse(f"SMS, {SNK}, LOG")
        assert spec.sinks == tuple(sorted({SNK, LOG}))

    def test_parse_unknown_token(self):
        with pytest.raises(TargetSpecError, match="BOGUS"):
            TargetSpec.parse("BOGUS")

    def test_parse_empty_is_falsy(self):
        spec = TargetSpec.parse("")
        assert not spec and len(spec) == 0

    def test_from_file(self, tmp_path):
        path = tmp_path / "targets.txt"
        path.write_text(f"# high-value sinks\nSMS\n{LOG}  # plus the log\n\n")
        assert TargetSpec.from_file(path).sinks == tuple(sorted({SNK, LOG}))

    def test_all_sinks_covers_registry(self):
        spec = TargetSpec.all_sinks()
        assert set(spec.sinks) == set(
            DEFAULT_REGISTRY.signatures(kind=KIND_SINK)
        )

    def test_fingerprint_stable_and_distinct(self):
        a, b = TargetSpec.parse("SMS"), TargetSpec.parse("LOG")
        assert a.fingerprint() == TargetSpec.parse("SMS").fingerprint()
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint() != TargetSpec.parse("SMS,LOG").fingerprint()

    def test_describe_uses_categories(self):
        assert TargetSpec.parse(f"SMS,{LOG}").describe() == "LOG,SMS"

    def test_empty_spec_rejected_by_build(self, leaky_app):
        with pytest.raises(TargetSpecError):
            build_targeted_workload(leaky_app, TargetSpec(sinks=()))


class TestRegistry:
    def test_lookup(self):
        entry = DEFAULT_REGISTRY.get(SNK)
        assert entry == ApiEntry(signature=SNK, kind=KIND_SINK, category="SMS")
        assert DEFAULT_REGISTRY.kind_of(SRC) == KIND_SOURCE
        assert DEFAULT_REGISTRY.category_of(SRC) == "UNIQUE_IDENTIFIER"
        assert DEFAULT_REGISTRY.get("nope") is None

    def test_queries(self):
        sinks = DEFAULT_REGISTRY.signatures(kind=KIND_SINK)
        assert SNK in sinks and sinks == tuple(sorted(sinks))
        assert DEFAULT_REGISTRY.signatures(
            kind=KIND_SINK, category="SMS"
        ) == (SNK,)
        assert "SMS" in DEFAULT_REGISTRY.categories(kind=KIND_SINK)
        assert SNK in DEFAULT_REGISTRY and len(DEFAULT_REGISTRY) == len(
            list(DEFAULT_REGISTRY)
        )

    def test_duplicate_signature_rejected(self):
        entry = ApiEntry(signature="a.B.m()V", kind=KIND_SINK, category="X")
        with pytest.raises(ValueError, match="duplicate"):
            ApiRegistry([entry, entry])

    def test_compat_views_match_registry(self):
        assert SINK_CATEGORIES == {
            e.signature: e.category
            for e in DEFAULT_REGISTRY.entries(kind=KIND_SINK)
        }
        assert SOURCE_CATEGORIES == {
            e.signature: e.category
            for e in DEFAULT_REGISTRY.entries(kind=KIND_SOURCE)
        }
        assert all(
            DEFAULT_REGISTRY.kind_of(s) == KIND_ICC_SEND
            for s in DEFAULT_REGISTRY.signatures(kind=KIND_ICC_SEND)
        )


class TestPreScan:
    def test_scan_blob_hit_and_miss(self, leaky_app):
        blob = pack_app(leaky_app)
        assert scan_blob(blob, TargetSpec.parse("SMS")) == (SNK,)
        net = TargetSpec.parse("NETWORK")
        assert scan_blob(blob, net) == ()

    def test_scan_gdx(self, leaky_app, tmp_path):
        path = tmp_path / "leaky.gdx"
        save_gdx(leaky_app, path)
        assert scan_gdx(path, TargetSpec.parse("SMS,NETWORK")) == (SNK,)

    def test_find_anchors(self, leaky_app):
        anchors = find_anchors(leaky_app, TargetSpec.parse("SMS"))
        assert len(anchors) == 1
        anchor = anchors[0]
        assert anchor.method == "com.leaky.Main.leak()V"
        assert anchor.label == "L4" and anchor.sink_api == SNK

    def test_scan_never_misses_an_anchor(self, leaky_app):
        # The raw-bytes pre-filter must be sound w.r.t. the IR scan.
        spec = TargetSpec.all_sinks()
        hits = set(scan_blob(pack_app(leaky_app), spec))
        assert {a.sink_api for a in find_anchors(leaky_app, spec)} <= hits


#: Stresses the relevant-callers rule (R1): taint enters the anchor
#: method as a parameter, so dropping the caller would lose the flow.
CALLER_TAINT_SOURCE = f"""
app com.r1
method a.B.emit(Ljava/lang/String;)V
  param data: Ljava/lang/String;
  L0: call {SNK}(data, data)
  L1: return
end
method a.B.top()V
  local id: Ljava/lang/String;
  L0: call id := {SRC}()
  L1: call a.B.emit(Ljava/lang/String;)V(id)
  L2: return
end
method a.B.bystander()V
  local s: Ljava/lang/String;
  L0: s := "static"
  L1: call {LOG}(s, s)
  L2: return
end
"""

#: Stresses the global-writers rule (R3): taint crosses methods only
#: through ``@@a.G.cache``; the writer shares no call edge with the
#: anchor method.
GLOBAL_CHANNEL_SOURCE = f"""
app com.r3
global a.G.cache: Ljava/lang/String;
method a.B.stash()V
  local id: Ljava/lang/String;
  L0: call id := {SRC}()
  L1: @@a.G.cache := id
  L2: return
end
method a.B.dump()V
  local v: Ljava/lang/String;
  L0: v := @@a.G.cache
  L1: call {SNK}(v, v)
  L2: return
end
"""


class TestSliceSoundness:
    def assert_equivalent(self, source, spec):
        app = parse_app(source)
        full, oracle = oracle_flows(app, spec)
        targeted, sliced = targeted_flows(app, spec)
        assert sliced == oracle
        return app, full, targeted

    def test_relevant_caller_joins_slice(self):
        spec = TargetSpec.parse("SMS")
        app, _, targeted = self.assert_equivalent(CALLER_TAINT_SOURCE, spec)
        assert "a.B.top()V" in targeted.slice.members
        # The taint-free bystander is not pulled in.
        assert "a.B.bystander()V" not in targeted.slice.members
        flows = {f.method for f in targeted_flows(app, spec)[1]}
        assert "a.B.emit(Ljava/lang/String;)V" in flows

    def test_global_writer_joins_slice(self):
        spec = TargetSpec.parse("SMS")
        app, _, targeted = self.assert_equivalent(GLOBAL_CHANNEL_SOURCE, spec)
        assert "a.B.stash()V" in targeted.slice.members
        assert targeted_flows(app, spec)[1]

    def test_callee_cone_joins_slice(self, leaky_app):
        spec = TargetSpec.parse("SMS")
        _, _, targeted = self.assert_equivalent(LEAKY_APP_SOURCE, spec)
        assert "com.leaky.Main.leak()V" in targeted.slice.members
        # clean() calls only the LOG sink; it cannot affect SMS flows.
        assert "com.leaky.Main.clean()V" not in targeted.slice.members

    def test_taint_relevance_over_approximation(self):
        app = parse_app(CALLER_TAINT_SOURCE)
        from repro.cfg.callgraph import CallGraph

        relevant = taint_relevant_methods(app, CallGraph(app))
        assert "a.B.top()V" in relevant
        assert "a.B.emit(Ljava/lang/String;)V" in relevant
        assert "a.B.bystander()V" not in relevant

    def test_slice_facts_bit_identical(self):
        # R2 (full callee cone) guarantees every slice member's fact
        # space and fixpoint match the full run exactly.
        spec = TargetSpec.parse("SMS")
        app = parse_app(CALLER_TAINT_SOURCE)
        full = AppWorkload.build(app)
        targeted = build_targeted_workload(app, spec)
        for signature in targeted.slice.members:
            mine = targeted.workload.idfg.facts_of(signature)
            theirs = full.idfg.facts_of(signature)
            assert mine.node_facts == theirs.node_facts
            assert mine.exit_facts == theirs.exit_facts

    def test_backward_slice_from_no_anchors(self, leaky_app):
        result = backward_slice(leaky_app, [])
        assert result.members == frozenset()


class TestCorpusEquivalence:
    @pytest.mark.parametrize("category", ["SMS", "NETWORK", "LOG", "FILE"])
    def test_flows_match_oracle(self, category):
        spec = TargetSpec.parse(category)
        corpus = AppCorpus(size=6, profile=TINY_PROFILE)
        for index in range(corpus.size):
            app = corpus.app(index)
            _, oracle = oracle_flows(app, spec)
            targeted, sliced = targeted_flows(app, spec)
            assert sliced == oracle, f"app {index}, {category}"
            if targeted.workload is None:
                assert oracle == frozenset()

    def test_slice_never_exceeds_app(self):
        spec = TargetSpec.all_sinks()
        corpus = AppCorpus(size=4, profile=TINY_PROFILE)
        for index in range(corpus.size):
            targeted = build_targeted_workload(corpus.app(index), spec)
            stats = targeted.stats
            assert 0 <= stats.slice_methods <= stats.full_methods
            assert 0 <= stats.slice_nodes <= stats.full_nodes
            assert 0.0 <= stats.slice_fraction <= 1.0


class TestSkipPath:
    def test_no_anchor_skips_idfg(self):
        app = parse_app(
            "app com.noop\nmethod a.B.m()V\n  L0: return\nend\n"
        )
        with obs.tracing() as tracer:
            targeted = build_targeted_workload(app, TargetSpec.parse("SMS"))
        assert targeted.workload is None and targeted.sliced_app is None
        stats = targeted.stats
        assert stats.skipped_idfg and stats.anchors == 0
        assert stats.slice_methods == 0 and stats.slice_nodes == 0
        assert tracer.counters.get("vet.targeted.skipped_idfg") == 1
        assert "vet.targeted.slice_methods" not in tracer.counters

    def test_skip_reports_clean(self, leaky_app):
        # Leaky via SMS, but the caller only asked about NETWORK.
        report, stats = vet_targeted(leaky_app, TargetSpec.parse("NETWORK"))
        assert stats.skipped_idfg
        assert report.verdict == "clean" and report.risk_score == 0
        assert report.flows == () and not report.is_suspicious

    def test_anchored_run_records_counters(self, leaky_app):
        with obs.tracing() as tracer:
            build_targeted_workload(leaky_app, TargetSpec.parse("SMS"))
        assert tracer.counters.get("vet.targeted.anchors") == 1
        assert tracer.counters.get("vet.targeted.slice_methods", 0) >= 1
        assert "vet.targeted.skipped_idfg" not in tracer.counters

    def test_targeted_report_matches_oracle_severity(self, leaky_app):
        from repro.vetting.report import vet_app

        report, stats = vet_targeted(leaky_app, TargetSpec.parse("SMS"))
        oracle = vet_app(leaky_app)
        assert not stats.skipped_idfg
        assert report.risk_score == oracle.risk_score
        assert report.verdict == oracle.verdict
        assert {f.sink_label for f in report.flows} == {
            f.sink_label for f in oracle.flows
        }


class TestCacheAliasing:
    def test_row_key_fingerprints_targets(self):
        from repro.bench.cache import row_key

        base = row_key(7, 4, "pfp", 0, "cfg")
        assert base == row_key(7, 4, "pfp", 0, "cfg", "")
        targeted = row_key(7, 4, "pfp", 0, "cfg", "abc123")
        assert base != targeted
        assert targeted != row_key(7, 4, "pfp", 0, "cfg", "abc124")

    def test_corpus_rows_never_alias(self, tmp_path, monkeypatch):
        import repro.bench.harness as harness

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_BENCH_CACHE", "1")
        monkeypatch.setattr(harness, "_CACHE", {})
        # Index 4 is the first tiny-corpus app that calls any sink, so
        # size=5 exercises both the skip rows and a cacheable sliced row.
        corpus = AppCorpus(size=5, profile=TINY_PROFILE)
        spec = TargetSpec.all_sinks()

        full = harness.evaluate_corpus(corpus)
        assert all(isinstance(r, harness.AppEvaluation) for r in full)

        # Fresh process cache: the targeted sweep must not be served
        # any of the full rows from disk.
        monkeypatch.setattr(harness, "_CACHE", {})
        targeted = harness.evaluate_corpus(corpus, targets=spec)
        stats = harness.last_run_stats()
        assert stats.disk_hits == 0 and stats.process_hits == 0

        for full_row, row in zip(full, targeted):
            if isinstance(row, harness.TargetedSkipRow):
                assert row.targets == spec.sinks
            else:
                assert row.methods <= full_row.methods

        # Disk round-trip: targeted AppEvaluation rows are served back
        # bit-identically; skip rows are recomputed (never cached).
        monkeypatch.setattr(harness, "_CACHE", {})
        again = harness.evaluate_corpus(corpus, targets=spec)
        assert again == targeted
        cached = harness.last_run_stats().disk_hits
        expected = sum(
            isinstance(r, harness.AppEvaluation) for r in targeted
        )
        assert cached == expected

    def test_process_cache_keys_carry_fingerprint(self, monkeypatch):
        import repro.bench.harness as harness

        monkeypatch.setenv("REPRO_BENCH_CACHE", "0")
        monkeypatch.setattr(harness, "_CACHE", {})
        corpus = AppCorpus(size=5, profile=TINY_PROFILE)
        spec = TargetSpec.all_sinks()
        harness.evaluate_corpus(corpus)
        harness.evaluate_corpus(corpus, targets=spec)
        fingerprints = {key[4] for key in harness._CACHE}
        assert "" in fingerprints
        assert spec.fingerprint() in fingerprints


class TestServeTargeted:
    def test_run_pipeline_skip(self, leaky_app):
        from repro.bench.harness import TargetedSkipRow
        from repro.serve.workers import run_pipeline

        result = run_pipeline(
            leaky_app, 0, "gdroid", False, True,
            targets=TargetSpec.parse("NETWORK"),
        )
        assert isinstance(result.row, TargetedSkipRow)
        assert result.latency_s == 0.0
        assert result.verdict == "clean" and result.risk_score == 0

    def test_run_pipeline_anchored(self, leaky_app):
        from repro.bench.harness import AppEvaluation
        from repro.serve.workers import run_pipeline

        result = run_pipeline(
            leaky_app, 0, "gdroid", False, True,
            targets=TargetSpec.parse("SMS"),
        )
        assert isinstance(result.row, AppEvaluation)
        assert result.latency_s and result.latency_s > 0.0
        assert result.verdict == "likely-malicious"

    def test_jobs_size_targeted_by_slice(self):
        from repro.serve.service import CorpusSource

        corpus = AppCorpus(size=4, profile=TINY_PROFILE)
        spec = TargetSpec.all_sinks()
        source = CorpusSource(corpus)
        jobs = source.jobs(targets=spec, targeted_every=2)
        assert [bool(j.targets) for j in jobs] == [True, False, True, False]
        for job in jobs:
            if job.targets:
                anchors, nodes = slice_estimate(
                    corpus.app(job.index), spec
                )
                assert job.est_cost == float(nodes)
                assert sorted(job.targets) == list(spec.sinks)
            else:
                full = corpus.app(job.index).describe()["cfg_nodes"]
                assert job.est_cost == float(full)

    def test_job_json_carries_targets(self):
        from repro.serve.service import CorpusSource

        corpus = AppCorpus(size=2, profile=TINY_PROFILE)
        jobs = CorpusSource(corpus).jobs(targets=TargetSpec.parse("SMS"))
        payload = jobs[0].to_json()
        assert payload["targets"] == [SNK]
        assert CorpusSource(corpus).jobs()[0].to_json()["targets"] is None

    def test_mixed_soak_zero_lost_jobs(self):
        from repro.serve import ServeConfig, run_soak

        corpus = AppCorpus(size=10, profile=TINY_PROFILE)
        report = run_soak(
            corpus,
            config=ServeConfig(workers=3),
            inject=frozenset({"worker-crash", "oom"}),
            targets=TargetSpec.all_sinks(),
            targeted_every=2,
        )
        assert report.ok and report.lost == 0 and report.duplicates == 0
        targeted = [j for j in report.jobs if j.targets]
        assert len(targeted) == 5
        assert all(j.state == "done" for j in report.jobs)


class TestTargetedCLI:
    def _leaky_gdx(self, tmp_path):
        path = tmp_path / "leaky.gdx"
        save_gdx(parse_app(LEAKY_APP_SOURCE), path)
        return str(path)

    def test_vet_targets_hit(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["vet", self._leaky_gdx(tmp_path), "--targets", "SMS"])
        out = capsys.readouterr().out
        assert code == 2
        assert "targeted vet [SMS]" in out and "1 anchor(s)" in out

    def test_vet_targets_skip(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["vet", self._leaky_gdx(tmp_path), "--targets", "NETWORK"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "IDFG skipped" in out and "clean" in out

    def test_vet_targets_file(self, tmp_path, capsys):
        from repro.cli import main

        targets = tmp_path / "targets.txt"
        targets.write_text("SMS\n# comment\n")
        code = main(
            [
                "vet",
                self._leaky_gdx(tmp_path),
                "--targets-file",
                str(targets),
            ]
        )
        assert code == 2

    def test_vet_targets_errors(self, tmp_path, capsys):
        from repro.cli import main

        gdx = self._leaky_gdx(tmp_path)
        assert main(["vet", gdx, "--targets", "BOGUS"]) == 2
        assert "unknown sink target" in capsys.readouterr().err
        targets = tmp_path / "targets.txt"
        targets.write_text("SMS\n")
        code = main(
            ["vet", gdx, "--targets", "SMS", "--targets-file", str(targets)]
        )
        assert code == 2
        assert "not both" in capsys.readouterr().err

    def test_serve_targets_smoke(self, capsys):
        from repro.cli import main

        code = main(
            [
                "serve",
                "--apps", "6",
                "--scale", "0.06",
                "--workers", "2",
                "--soak",
                "--targets", "SMS",
                "--targets-every", "2",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        targeted = [j for j in payload["jobs"] if j["targets"]]
        assert len(targeted) == 3
        assert all(j["state"] == "done" for j in payload["jobs"])
