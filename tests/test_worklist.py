"""Sequential worklist (Alg. 1) reference tests."""

import pytest

from repro.dataflow.worklist import (
    SequentialWorklist,
    analyze_app_reference,
    compute_summaries,
)
from repro.cfg.callgraph import CallGraph, SBDALayering
from repro.ir.parser import parse_app


class TestSingleMethod:
    def test_facts_flow_through_loop(self, demo_app):
        method = demo_app.method(
            "com.demo.Main.onCreate(Landroid/content/Intent;)V"
        )
        result = SequentialWorklist(method).run()
        # After the back edge, L0's entry facts include the heap write
        # performed at L1 on an earlier trip.
        decoded = {str(f) for f in result.decoded(0)}
        assert any("'heap'" in f for f in decoded)

    def test_empty_method(self):
        app = parse_app("app p\nmethod a.B.m()V\nend\n")
        result = SequentialWorklist(app.method("a.B.m()V")).run()
        assert result.node_facts == ()
        assert result.exit_facts == frozenset()

    def test_visit_counter(self, demo_app):
        method = demo_app.method(
            "com.demo.Main.helper(Ljava/lang/Object;)Ljava/lang/Object;"
        )
        runner = SequentialWorklist(method)
        runner.run()
        assert runner.visits >= len(method.statements)

    def test_unreachable_nodes_stay_empty(self):
        app = parse_app(
            "app p\nmethod a.B.m()V\n"
            "  local x: Ljava/lang/Object;\n"
            "  L0: goto L2\n"
            "  L1: x := new a.B\n"
            "  L2: return\nend\n"
        )
        result = SequentialWorklist(app.method("a.B.m()V")).run()
        assert result.node_facts[1] == frozenset()


class TestAppReference:
    def test_demo_app_converges(self, demo_app):
        idfg = analyze_app_reference(demo_app)
        assert idfg.total_fact_count() > 0
        # Environment methods are analyzed too.
        assert any("__env__" in m for m in idfg.methods())

    def test_summaries_enable_interprocedural_flow(self, demo_app):
        idfg = analyze_app_reference(demo_app)
        helper = "com.demo.Main.helper(Ljava/lang/Object;)Ljava/lang/Object;"
        assert idfg.summaries[helper].return_pfields == frozenset({(0, "f")})

    def test_recursive_scc_summary_fixed_point(self):
        app = parse_app(
            "app p\n"
            "method a.B.f(Ljava/lang/Object;)Ljava/lang/Object;\n"
            "  param p: Ljava/lang/Object;\n"
            "  local r: Ljava/lang/Object;\n"
            "  local c: I\n"
            "  L0: if c then goto L3\n"
            "  L1: call r := a.B.g(Ljava/lang/Object;)Ljava/lang/Object;(p)\n"
            "  L2: return r\n"
            "  L3: return p\n"
            "end\n"
            "method a.B.g(Ljava/lang/Object;)Ljava/lang/Object;\n"
            "  param q: Ljava/lang/Object;\n"
            "  local s: Ljava/lang/Object;\n"
            "  L0: call s := a.B.f(Ljava/lang/Object;)Ljava/lang/Object;(q)\n"
            "  L1: return s\n"
            "end\n"
        )
        layering = SBDALayering(CallGraph(app))
        summaries = compute_summaries(app, layering)
        # Mutual recursion: both must discover they may return param 0.
        f = summaries["a.B.f(Ljava/lang/Object;)Ljava/lang/Object;"]
        g = summaries["a.B.g(Ljava/lang/Object;)Ljava/lang/Object;"]
        assert 0 in f.return_params
        assert 0 in g.return_params

    def test_self_recursion(self):
        app = parse_app(
            "app p\n"
            "method a.B.f(Ljava/lang/Object;)Ljava/lang/Object;\n"
            "  param p: Ljava/lang/Object;\n"
            "  local r: Ljava/lang/Object;\n"
            "  local c: I\n"
            "  L0: if c then goto L3\n"
            "  L1: call r := a.B.f(Ljava/lang/Object;)Ljava/lang/Object;(p)\n"
            "  L2: return r\n"
            "  L3: return p\n"
            "end\n"
        )
        idfg = analyze_app_reference(app, with_environments=False)
        summary = idfg.summaries["a.B.f(Ljava/lang/Object;)Ljava/lang/Object;"]
        assert 0 in summary.return_params
