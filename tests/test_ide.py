"""IDE copy-constant-propagation tests."""

import pytest

from repro.dataflow.ide import BOTTOM, TOP, IdeConstantSolver, meet
from repro.ir.parser import parse_app
from tests.conftest import tiny_app


def solve(source: str):
    app = parse_app(source)
    solver = IdeConstantSolver(app)
    solver.solve()
    return solver


class TestLattice:
    def test_meet_table(self):
        assert meet(BOTTOM, 3) == 3
        assert meet(3, BOTTOM) == 3
        assert meet(3, 3) == 3
        assert meet(3, 4) == TOP
        assert meet(TOP, 3) == TOP
        assert meet(BOTTOM, BOTTOM) == BOTTOM


class TestIntraprocedural:
    def test_straight_line_constants(self):
        solver = solve(
            "app p\nmethod a.B.m()V\n"
            "  local i: I\n  local j: I\n"
            "  L0: i := 7\n"
            "  L1: j := i\n"
            "  L2: j := j + i\n"
            "  L3: return\nend\n"
        )
        env = solver.environment_at("a.B.m()V", "L3")
        assert env.of("i") == 7
        assert env.of("j") == 14

    def test_arithmetic_folding(self):
        solver = solve(
            "app p\nmethod a.B.m()V\n"
            "  local a: I\n  local b: I\n  local c: I\n  local two: I\n"
            "  L0: a := 6\n  L1: b := 7\n  L2: c := a * b\n"
            "  L20: two := 2\n"
            "  L3: c := c - two\n  L4: return\nend\n"
        )
        assert solver.environment_at("a.B.m()V", "L4").of("c") == 40

    def test_join_of_different_constants_is_top(self):
        solver = solve(
            "app p\nmethod a.B.m()V\n"
            "  local i: I\n  local c: I\n"
            "  L0: if c then goto L3\n"
            "  L1: i := 1\n"
            "  L2: goto L4\n"
            "  L3: i := 2\n"
            "  L4: return\nend\n"
        )
        assert solver.environment_at("a.B.m()V", "L4").of("i") == TOP

    def test_join_of_equal_constants_stays_constant(self):
        solver = solve(
            "app p\nmethod a.B.m()V\n"
            "  local i: I\n  local c: I\n"
            "  L0: if c then goto L3\n"
            "  L1: i := 5\n"
            "  L2: goto L4\n"
            "  L3: i := 5\n"
            "  L4: return\nend\n"
        )
        assert solver.environment_at("a.B.m()V", "L4").of("i") == 5

    def test_loop_increment_goes_top(self):
        solver = solve(
            "app p\nmethod a.B.m()V\n"
            "  local i: I\n  local one: I\n  local c: I\n"
            "  L0: i := 0\n"
            "  L1: one := 1\n"
            "  L2: i := i + one\n"
            "  L3: if c then goto L2\n"
            "  L4: return\nend\n"
        )
        assert solver.environment_at("a.B.m()V", "L4").of("i") == TOP

    def test_unknown_expression_is_top(self):
        solver = solve(
            "app p\nmethod a.B.m()V\n"
            "  local i: I\n  local x: Ljava/lang/Object;\n"
            "  L0: i := length(x)\n  L1: return\nend\n"
        )
        assert solver.environment_at("a.B.m()V", "L1").of("i") == TOP


class TestInterprocedural:
    def test_constant_through_parameter(self):
        solver = solve(
            "app p\n"
            "method a.B.use(I)V\n"
            "  param k: I\n  local j: I\n"
            "  L0: j := k\n  L1: return\nend\n"
            "method a.B.top()V\n"
            "  local i: I\n"
            "  L0: i := 9\n"
            "  L1: call a.B.use(I)V(i)\n"
            "  L2: return\nend\n"
        )
        assert solver.environment_at("a.B.use(I)V", "L1").of("j") == 9

    def test_conflicting_call_sites_meet_to_top(self):
        solver = solve(
            "app p\n"
            "method a.B.use(I)V\n"
            "  param k: I\n"
            "  L0: nop\n  L1: return\nend\n"
            "method a.B.top()V\n"
            "  local i: I\n  local j: I\n"
            "  L0: i := 1\n  L1: j := 2\n"
            "  L2: call a.B.use(I)V(i)\n"
            "  L3: call a.B.use(I)V(j)\n"
            "  L4: return\nend\n"
        )
        assert solver.environment_at("a.B.use(I)V", "L1").of("k") == TOP

    def test_constant_return_value(self):
        solver = solve(
            "app p\n"
            "method a.B.answer()I\n"
            "  local r: I\n"
            "  L0: r := 42\n  L1: return r\nend\n"
            "method a.B.top()V\n"
            "  local v: I\n  local w: I\n"
            "  L0: call v := a.B.answer()I()\n"
            "  L1: w := v\n"
            "  L2: return\nend\n"
        )
        assert solver.environment_at("a.B.top()V", "L2").of("w") == 42


class TestClients:
    def test_constant_conditions_detected(self):
        solver = solve(
            "app p\nmethod a.B.m()V\n"
            "  local c: I\n"
            "  L0: c := 0\n"
            "  L1: if c then goto L3\n"
            "  L2: nop\n"
            "  L3: return\nend\n"
        )
        assert ("a.B.m()V", "L1", 0) in solver.constant_conditions()

    def test_runs_on_generated_apps(self):
        app = tiny_app(4)
        solver = IdeConstantSolver(app)
        solver.solve()
        # Sanity: the solver terminates and produces environments for
        # reached nodes without claiming everything constant.
        assert solver.environments
        total = sum(
            1
            for env in solver.environments.values()
            for value in env.values()
            if value == TOP
        )
        assert total > 0
