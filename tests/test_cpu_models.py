"""CPU counterpart and Amandroid pipeline model tests."""

import pytest

from repro.core.engine import AppWorkload
from repro.cpu.amandroid import AmandroidModel
from repro.cpu.multicore import (
    CPUCostTable,
    CPUSpec,
    MulticoreWorklist,
    XEON_GOLD_5115,
)
from tests.conftest import tiny_app


@pytest.fixture(scope="module")
def workload():
    return AppWorkload.build(tiny_app(4))


class TestCPUSpec:
    def test_matches_paper_host(self):
        assert XEON_GOLD_5115.cores == 10
        assert XEON_GOLD_5115.clock_ghz == 2.4
        assert XEON_GOLD_5115.ram_bytes == 64 * 1024**3


class TestMulticore:
    def test_method_cycles_cover_all_methods(self, workload):
        model = MulticoreWorklist()
        per_method = model.method_cycles(workload)
        visited_methods = set()
        for result in workload.block_results:
            trace = result.trace_mer or result.trace_sync
            for iteration in trace.iterations:
                for visit in iteration.visits:
                    visited_methods.add(trace.node_meta[visit.node].method)
        assert set(per_method) == visited_methods

    def test_layer_barriers_counted(self, workload):
        result = MulticoreWorklist().analyze(workload)
        assert len(result.per_layer_cycles) == len(workload.layering.layers)
        assert result.total_cycles == pytest.approx(sum(result.per_layer_cycles))

    def test_more_cores_never_slower(self, workload):
        few = MulticoreWorklist(spec=CPUSpec(cores=2)).analyze(workload)
        many = MulticoreWorklist(spec=CPUSpec(cores=16)).analyze(workload)
        assert many.total_cycles <= few.total_cycles

    def test_cost_scaling(self, workload):
        cheap = MulticoreWorklist(costs=CPUCostTable(visit_cycles=1.0))
        dear = MulticoreWorklist(costs=CPUCostTable(visit_cycles=1e6))
        assert (
            dear.analyze(workload).total_cycles
            > cheap.analyze(workload).total_cycles
        )

    def test_visits_match_trace(self, workload):
        result = MulticoreWorklist().analyze(workload)
        expected = sum(
            (r.trace_mer or r.trace_sync).visit_count
            * max(1, (r.trace_mer or r.trace_sync).summary_rounds)
            for r in workload.block_results
        )
        assert result.visits == expected


class TestAmandroid:
    def test_breakdown_components_positive(self, workload):
        timing = AmandroidModel().analyze(workload)
        assert timing.frontend_cycles > 0
        assert timing.idfg_cycles > 0
        assert timing.plugin_cycles > 0
        assert timing.total_seconds == pytest.approx(
            timing.spec.cycles_to_seconds(timing.total_cycles)
        )

    def test_idfg_dominates(self, workload):
        """Fig. 1: IDFG construction is 58-96% of the total."""
        timing = AmandroidModel().analyze(workload)
        assert 0.4 < timing.idfg_fraction < 0.97

    def test_bigger_apps_cost_more(self):
        small = AmandroidModel().analyze(AppWorkload.build(tiny_app(4)))
        from tests.conftest import SMALL_PROFILE
        from repro.apk.generator import AppGenerator

        bigger_app = AppGenerator(SMALL_PROFILE).generate(4)
        big = AmandroidModel().analyze(AppWorkload.build(bigger_app))
        assert big.total_cycles > small.total_cycles
