"""Dalvik-style bytecode and GDX v2 container tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apk.bytecode import (
    BytecodeError,
    ConstantPools,
    OP_TEXT,
    assemble_method,
    disassemble_method,
)
from repro.apk.dex import unpack_app
from repro.apk.dex2 import pack_app_v2, unpack_app_v2
from repro.ir.parser import parse_app
from repro.ir.printer import print_app, print_method
from tests.conftest import DEMO_APP_SOURCE, tiny_app


def roundtrip_method(method):
    pools = ConstantPools()
    code, registers, labels = assemble_method(method, pools)
    statements = disassemble_method(code, registers, labels, pools)
    assert list(statements) == list(method.statements)
    return code, pools


class TestInstructionRoundTrip:
    def test_every_statement_shape(self):
        app = parse_app(
            "app p\n"
            "method a.B.m(Ljava/lang/Object;)Ljava/lang/Object;\n"
            "  param a0: Ljava/lang/Object;\n"
            "  local x: Ljava/lang/Object;\n"
            "  local y: Ljava/lang/Object;\n"
            "  local arr: [Ljava/lang/Object;\n"
            "  local i: I\n"
            "  local f: F\n"
            "  catch L21 from L0 to L19\n"
            "  L0: nop\n"
            "  L1: x := new a.B\n"
            "  L2: x := y\n"
            "  L3: x := null\n"
            '  L4: x := "text"\n'
            "  L5: i := 42\n"
            "  L6: f := 2.5\n"
            "  L7: i := true\n"
            "  L8: x := constclass a.C\n"
            "  L9: x := y.fld\n"
            "  L10: x := @@g.G.s\n"
            "  L11: x := arr[i]\n"
            "  L12: i := i + i\n"
            "  L13: i := -i\n"
            "  L14: i := cmpl(i, i)\n"
            "  L15: i := x instanceof Ljava/lang/Object;\n"
            "  L16: i := length(arr)\n"
            "  L17: x := (Ljava/lang/Object;) y\n"
            "  L18: x := (y, a0)\n"
            "  L19: call x := a.B.n(I)Ljava/lang/Object;(i)\n"
            "  L20: goto L22\n"
            "  L21: x := Exception\n"
            "  L22: if i then goto L24\n"
            "  L23: switch i { case 0: goto L24; default: goto L25 }\n"
            "  L24: monitorenter x\n"
            "  L25: monitorexit x\n"
            "  L26: y.fld := x\n"
            "  L27: @@g.G.s := x\n"
            "  L28: arr[i] := x\n"
            '  L29: y.fld := "lit"\n'
            "  L30: throw x\n"
            "  L31: return x\n"
            "end\n"
        )
        method = app.method("a.B.m(Ljava/lang/Object;)Ljava/lang/Object;")
        code, pools = roundtrip_method(method)
        assert len(code) > 0
        # No escape hatches needed for the basic shapes.
        assert OP_TEXT not in code[:1]

    def test_compound_store_uses_escape_hatch(self):
        app = parse_app(
            "app p\nmethod a.B.m()V\n"
            "  local x: Ljava/lang/Object;\n"
            "  L0: x := new a.B\n"
            "  L1: x.f := new a.C\n"
            "  L2: x.f := x.g\n"
            "  L3: return\nend\n"
        )
        method = app.method("a.B.m()V")
        pools = ConstantPools()
        code, registers, labels = assemble_method(method, pools)
        assert OP_TEXT in code  # compound payloads lowered via text
        statements = disassemble_method(code, registers, labels, pools)
        assert list(statements) == list(method.statements)

    def test_pool_interning_dedupes(self):
        pools = ConstantPools()
        a = pools.intern("java.lang.Object")
        b = pools.intern("java.lang.Object")
        assert a == b
        assert pools.lookup(a) == "java.lang.Object"

    def test_truncated_code_rejected(self):
        app = parse_app(
            "app p\nmethod a.B.m()V\n  L0: nop\n  L1: return\nend\n"
        )
        method = app.method("a.B.m()V")
        pools = ConstantPools()
        code, registers, labels = assemble_method(method, pools)
        with pytest.raises(BytecodeError):
            disassemble_method(code[:-1], registers, labels, pools)

    def test_label_count_mismatch_rejected(self):
        app = parse_app(
            "app p\nmethod a.B.m()V\n  L0: nop\n  L1: return\nend\n"
        )
        method = app.method("a.B.m()V")
        pools = ConstantPools()
        code, registers, labels = assemble_method(method, pools)
        with pytest.raises(BytecodeError, match="labels"):
            disassemble_method(code, registers, labels + ["L9"], pools)


class TestGdxV2Container:
    def test_demo_app_round_trip(self, demo_app):
        blob = pack_app_v2(demo_app)
        assert blob[:4] == b"GDX2"
        assert print_app(unpack_app_v2(blob)) == print_app(demo_app)

    def test_unpack_dispatches_on_magic(self, demo_app):
        blob = pack_app_v2(demo_app)
        assert print_app(unpack_app(blob)) == print_app(demo_app)

    def test_v2_is_smaller_than_v1(self):
        """Pooled bytecode beats repeated text (the reason dex pools)."""
        from repro.apk.dex import pack_app

        app = tiny_app(4)
        assert len(pack_app_v2(app)) < len(pack_app(app))

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=400))
    def test_generated_apps_round_trip(self, seed):
        app = tiny_app(seed)
        assert print_app(unpack_app_v2(pack_app_v2(app))) == print_app(app)
