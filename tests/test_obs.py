"""The ``repro.obs`` run-ledger layer: tracer, exports, reconciliation."""

from __future__ import annotations

import json

from repro import obs
from repro.apk.corpus import AppCorpus
from repro.bench.harness import evaluate_corpus, last_run_stats
from repro.core.engine import AppWorkload
from repro.obs.export import (
    HARNESS_STAGES,
    chrome_trace_document,
    export_chrome_trace,
    export_run_ledger,
    render_ledger,
    run_ledger,
)
from repro.obs.tracer import Span, Tracer
from repro.vetting.report import vet_workload
from tests.conftest import TINY_PROFILE


class _Clock:
    """Deterministic clock for exact span assertions."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


# -- tracer core --------------------------------------------------------------


class TestTracer:
    def test_span_records_interval_and_args(self):
        clock = _Clock()
        tracer = Tracer(clock=clock)
        clock.t = 1.0
        with tracer.span("build", category="engine", package="com.a"):
            clock.t = 3.5
        (span,) = tracer.spans
        assert span.name == "build"
        assert span.category == "engine"
        assert span.start_s == 1.0
        assert span.duration_s == 2.5
        assert span.end_s == 3.5
        assert dict(span.args) == {"package": "com.a"}

    def test_span_recorded_on_exception(self):
        tracer = Tracer(clock=_Clock())
        try:
            with tracer.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert len(tracer.spans) == 1

    def test_counters_accumulate(self):
        tracer = Tracer()
        tracer.count("visits", 3)
        tracer.count("visits", 4)
        tracer.count("launches")
        assert tracer.counters == {"visits": 7, "launches": 1}

    def test_stage_totals_sum_per_category(self):
        clock = _Clock()
        tracer = Tracer(clock=clock)
        for duration in (1.0, 2.0):
            with tracer.span("a", category="lookup"):
                clock.t += duration
        with tracer.span("b", category="store"):
            clock.t += 4.0
        totals = tracer.stage_totals()
        assert totals == {"lookup": 3.0, "store": 4.0}
        assert tracer.total_s() == 7.0

    def test_span_dict_round_trip(self):
        span = Span("n", "c", 1.0, 2.0, worker=3, args=(("k", 5),))
        assert Span.from_dict(span.to_dict()) == span

    def test_merge_assigns_lane_and_offset(self):
        clock = _Clock()
        worker = Tracer(clock=clock)
        with worker.span("chunk", category="app"):
            clock.t = 2.0
        parent = Tracer(clock=_Clock())
        merged = parent.merge(worker.export_spans(), worker=2, offset_s=10.0)
        assert merged == 1
        (span,) = parent.spans
        assert span.worker == 2
        assert span.start_s == 10.0
        assert span.duration_s == 2.0


# -- module-level plumbing ----------------------------------------------------


class TestModuleApi:
    def test_span_is_noop_without_tracer(self):
        assert obs.active() is None
        with obs.span("nothing", category="x"):
            obs.count("nothing", 5)
        assert obs.active() is None

    def test_tracing_installs_and_restores(self):
        with obs.tracing() as tracer:
            assert obs.active() is tracer
            with obs.span("inner", category="y", k=1):
                pass
            obs.count("c", 2)
        assert obs.active() is None
        assert tracer.spans[0].name == "inner"
        assert tracer.counters == {"c": 2}

    def test_nested_tracing_restores_outer(self):
        with obs.tracing() as outer:
            with obs.tracing() as inner:
                assert obs.active() is inner
            assert obs.active() is outer

    def test_activate_deactivate(self):
        tracer = Tracer()
        assert obs.activate(tracer) is None
        assert obs.active() is tracer
        assert obs.deactivate() is tracer
        assert obs.active() is None


# -- exports ------------------------------------------------------------------


def _sample_tracer() -> Tracer:
    clock = _Clock()
    tracer = Tracer(clock=clock)
    with tracer.span("corpus.lookup", category="lookup", apps=2):
        clock.t = 0.25
    with tracer.span("app[0]", category="app", index=0):
        clock.t = 1.0
    tracer.count("corpus.apps", 2)
    tracer.merge(
        [
            {
                "name": "app[1]",
                "category": "app",
                "start_s": 0.0,
                "duration_s": 0.5,
                "args": {"index": 1},
            }
        ],
        worker=1,
        offset_s=0.25,
    )
    return tracer


class TestChromeTrace:
    def test_document_schema(self):
        document = chrome_trace_document(_sample_tracer())
        assert set(document) == {"traceEvents", "displayTimeUnit", "metadata"}
        events = document["traceEvents"]
        phases = {event["ph"] for event in events}
        assert phases == {"M", "X", "C"}
        # Every event is JSON-serialisable with the standard encoder.
        json.dumps(document)

    def test_spans_become_complete_events_in_microseconds(self):
        events = chrome_trace_document(_sample_tracer())["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        lookup = next(e for e in spans if e["name"] == "corpus.lookup")
        assert lookup["ts"] == 0.0
        assert lookup["dur"] == 0.25 * 1e6
        assert lookup["cat"] == "lookup"
        assert lookup["args"] == {"apps": 2}
        worker = next(e for e in spans if e["name"] == "app[1]")
        assert worker["tid"] == 1  # merged worker lane

    def test_thread_lane_metadata(self):
        events = chrome_trace_document(_sample_tracer())["traceEvents"]
        names = {
            event["tid"]: event["args"]["name"]
            for event in events
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert names == {0: "main", 1: "worker 1"}

    def test_counter_events(self):
        events = chrome_trace_document(_sample_tracer())["traceEvents"]
        counters = [e for e in events if e["ph"] == "C"]
        assert counters and counters[0]["args"] == {"corpus.apps": 2}

    def test_export_writes_loadable_file(self, tmp_path):
        path = tmp_path / "run.trace.json"
        count = export_chrome_trace(_sample_tracer(), str(path))
        document = json.loads(path.read_text())
        assert len(document["traceEvents"]) == count


class TestRunLedger:
    def test_ledger_document(self):
        tracer = _sample_tracer()
        ledger = run_ledger(tracer, metadata={"apps": 2})
        assert ledger["schema"] == 1
        assert ledger["span_count"] == 3
        assert ledger["stages"]["lookup"] == 0.25
        assert ledger["stages"]["app"] == 0.75 + 0.5
        assert ledger["counters"] == {"corpus.apps": 2}
        assert ledger["metadata"] == {"apps": 2}
        json.dumps(ledger)

    def test_ledger_embeds_run_stats(self, tmp_path):
        corpus = AppCorpus(size=1, base_seed=870100, profile=TINY_PROFILE)
        with obs.tracing() as tracer:
            evaluate_corpus(corpus, no_cache=True)
        ledger = export_run_ledger(
            tracer, str(tmp_path / "ledger.json"), run_stats=last_run_stats()
        )
        stored = json.loads((tmp_path / "ledger.json").read_text())
        assert stored["run_stats"]["apps"] == 1
        assert ledger["run_stats"]["evaluated"] == 1

    def test_render_ledger_mentions_stages_and_counters(self):
        text = render_ledger(run_ledger(_sample_tracer()))
        assert "lookup" in text
        assert "corpus.apps" in text
        assert "worker 1" in text


# -- pipeline integration -----------------------------------------------------


class TestPipelineIntegration:
    def test_stage_totals_reconcile_with_run_stats(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        corpus = AppCorpus(size=3, base_seed=870200, profile=TINY_PROFILE)
        with obs.tracing() as tracer:
            rows = evaluate_corpus(corpus)
        stats = last_run_stats()
        assert len(rows) == 3 and stats.evaluated == 3
        stages = tracer.stage_totals()
        for stage, stopwatch in (
            ("lookup", stats.lookup_s),
            ("evaluate", stats.evaluate_s),
            ("store", stats.store_s),
        ):
            assert abs(stages.get(stage, 0.0) - stopwatch) < 0.05
        reconciled = sum(stages.get(stage, 0.0) for stage in HARNESS_STAGES)
        assert abs(reconciled - stats.total_s) < 0.1

    def test_engine_and_pricing_spans_recorded(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        corpus = AppCorpus(size=1, base_seed=870300, profile=TINY_PROFILE)
        with obs.tracing() as tracer:
            evaluate_corpus(corpus)
        categories = {span.category for span in tracer.spans}
        assert {"lookup", "evaluate", "store", "app", "engine", "block", "price"} <= categories
        assert tracer.counters["engine.workloads"] == 1
        assert tracer.counters["block.runs"] >= 1
        assert tracer.counters["price.launches"] >= 1

    def test_parallel_workers_merge_onto_lanes(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        corpus = AppCorpus(size=4, base_seed=870400, profile=TINY_PROFILE)
        with obs.tracing() as tracer:
            rows = evaluate_corpus(corpus, jobs=2, no_cache=True)
        assert len(rows) == 4
        lanes = {span.worker for span in tracer.spans if span.category == "app"}
        assert lanes == {1, 2}
        # Worker counters survive the process boundary.
        assert tracer.counters["engine.workloads"] == 4

    def test_warm_cache_run_has_no_evaluate_stage(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        corpus = AppCorpus(size=2, base_seed=870500, profile=TINY_PROFILE)
        evaluate_corpus(corpus)
        with obs.tracing() as tracer:
            evaluate_corpus(corpus)
        stages = tracer.stage_totals()
        assert "lookup" in stages
        assert "evaluate" not in stages  # everything cache-served

    def test_vetting_span(self, demo_app):
        workload = AppWorkload.build(demo_app)
        with obs.tracing() as tracer:
            vet_workload(demo_app, workload)
        vet_spans = [s for s in tracer.spans if s.category == "vetting"]
        assert len(vet_spans) == 1
        assert vet_spans[0].name == "vet:com.demo"

    def test_strict_relint_spans_on_warm_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        corpus = AppCorpus(size=2, base_seed=870600, profile=TINY_PROFILE)
        evaluate_corpus(corpus)
        with obs.tracing() as tracer:
            evaluate_corpus(corpus, strict=True)
        lint_spans = [s for s in tracer.spans if s.category == "lint"]
        assert len(lint_spans) == 2
