"""Warp-execution tests: divergence serialization and lane accounting."""

import pytest

from repro.gpu.memory import MemoryModel
from repro.gpu.spec import CostTable
from repro.gpu.warp import LaneWork, execute_warp, form_warps

COSTS = CostTable()


def lane(branch="a", compute=10.0, element=0, scattered=0):
    return LaneWork(
        branch_class=branch,
        compute_cycles=compute,
        node_element=element,
        scattered_accesses=scattered,
    )


class TestDivergence:
    def test_uniform_warp_single_pass(self):
        execution = execute_warp(
            [lane(element=i) for i in range(32)], COSTS, MemoryModel()
        )
        assert execution.divergent_passes == 1
        assert execution.divergence_cycles == 0.0

    def test_two_classes_two_passes(self):
        lanes = [lane(branch="a" if i % 2 else "b", element=i) for i in range(8)]
        execution = execute_warp(lanes, COSTS, MemoryModel())
        assert execution.divergent_passes == 2
        assert execution.divergence_cycles == COSTS.divergence_pass_cycles

    def test_compute_is_sum_of_per_class_max(self):
        lanes = [
            lane(branch="a", compute=5, element=0),
            lane(branch="a", compute=9, element=1),
            lane(branch="b", compute=3, element=2),
        ]
        execution = execute_warp(lanes, COSTS, MemoryModel())
        assert execution.compute_cycles == 9 + 3

    def test_25_way_worst_case(self):
        lanes = [lane(branch=str(i), element=i) for i in range(25)]
        execution = execute_warp(lanes, COSTS, MemoryModel())
        assert execution.divergent_passes == 25


class TestMemoryCharging:
    def test_adjacent_node_records_coalesce(self):
        # 64B records: two per 128B segment.
        lanes = [lane(element=i) for i in range(8)]
        execution = execute_warp(lanes, COSTS, MemoryModel())
        assert execution.transactions == 4

    def test_scattered_accesses_added(self):
        lanes = [lane(element=0, scattered=3), lane(element=1, scattered=2)]
        execution = execute_warp(lanes, COSTS, MemoryModel())
        # 1 record transaction (shared segment) + 5 scattered.
        assert execution.transactions == 6

    def test_fact_row_accesses(self):
        memory = MemoryModel()
        lanes = [
            LaneWork(
                branch_class="a",
                compute_cycles=1.0,
                node_element=i,
                fact_accesses=((2, i, 32),),
            )
            for i in range(4)
        ]
        execution = execute_warp(lanes, COSTS, memory)
        # 4 x 64B records -> 2 segments; 4 x 32B rows -> 1 segment.
        assert execution.transactions == 3


class TestEdgeCases:
    def test_empty_warp(self):
        execution = execute_warp([], COSTS, MemoryModel())
        assert execution.total_cycles == 0.0
        assert execution.active_lanes == 0

    def test_total_is_sum_of_components(self):
        execution = execute_warp([lane()], COSTS, MemoryModel())
        assert execution.total_cycles == pytest.approx(
            execution.compute_cycles
            + execution.divergence_cycles
            + execution.memory_cycles
        )


class TestFormWarps:
    def test_partitioning(self):
        lanes = [lane(element=i) for i in range(70)]
        warps = form_warps(lanes, 32)
        assert [len(w) for w in warps] == [32, 32, 6]

    def test_exact_multiple(self):
        warps = form_warps([lane()] * 64, 32)
        assert [len(w) for w in warps] == [32, 32]

    def test_empty(self):
        assert form_warps([], 32) == []
